"""Server-side metrics: counters, latency percentiles, batch shape.

The recorder is the single point the server threads touch (under its
own lock, never the batcher's); :class:`ServerStats` is the immutable
snapshot handed to callers, so reading metrics never races serving.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True, kw_only=True)
class ServerStats:
    """One consistent snapshot of a :class:`~repro.serving.server.
    PipelineServer`'s counters.

    Attributes
    ----------
    submitted, completed, failed:
        Requests accepted into the queue, requests whose result was
        delivered, and requests completed with an error (the pipeline
        raised; the exception is re-raised by ``PendingResult.result``).
    rejected:
        Submissions refused by backpressure (``overflow="reject"`` with
        a full queue, or a ``block`` submission that timed out).
    cancelled:
        Requests abandoned by a non-draining stop.
    degraded:
        Completed results whose decision was qualifier-flagged and
        therefore routed to the degradation hook (see
        ``repro.core.hybrid.HybridResult.flagged``).
    batches:
        Micro-batches flushed to ``infer_batch``.
    mean_batch_size:
        Mean realized micro-batch size (completed + failed over
        batches); the adaptivity figure of merit -- 1.0 means the
        batcher never coalesced anything.
    throughput_rps:
        Completed requests per second of server uptime.  Uptime (and
        therefore this rate) spans *every* running period of the
        server's life, matching the counters, which also persist
        across stop/start cycles -- a restart never inflates the rate
        by dividing all-time completions by only the latest run.
    p50_latency_ms, p99_latency_ms:
        Submit-to-completion latency percentiles over the most recent
        ``latency_window`` completions (0.0 before any completion).
    uptime_seconds:
        Total wall time the server has spent running, accumulated
        across stop/start cycles (frozen while stopped).
    queue_depth:
        Requests waiting in the queue at snapshot time.
    cache_hits, cache_misses, coalesced_joins:
        Response-cache outcomes (all zero under ``cache="off"`` or
        per-submit opt-out): submissions answered from the completed
        store, submissions that became a key's single-flight leader
        (and therefore cost one inference), and submissions that
        attached to an in-flight leader.  See
        :mod:`repro.serving.cache`.
    cache_evictions:
        LRU entries dropped because the store exceeded
        ``cache_max_entries``.
    cache_entries:
        Results held in the store at snapshot time.
    cache_hit_rate:
        ``(cache_hits + coalesced_joins) / (cache_hits + cache_misses
        + coalesced_joins)`` -- the fraction of cache-eligible
        submissions that did *not* cost a dedicated inference (0.0
        before any lookup).
    p50_cached_latency_ms, p99_cached_latency_ms:
        Latency percentiles over cached deliveries only (store hits
        and coalesced joins) -- what repeat traffic experiences.
    p50_computed_latency_ms, p99_computed_latency_ms:
        Latency percentiles over computed deliveries only (requests
        that went through a micro-batch flush) -- what unique traffic
        experiences.  The overall ``p50/p99_latency_ms`` mix both.
    """

    submitted: int
    completed: int
    failed: int
    rejected: int
    cancelled: int
    degraded: int
    batches: int
    mean_batch_size: float
    throughput_rps: float
    p50_latency_ms: float
    p99_latency_ms: float
    uptime_seconds: float
    queue_depth: int
    cache_hits: int = 0
    cache_misses: int = 0
    coalesced_joins: int = 0
    cache_evictions: int = 0
    cache_entries: int = 0
    cache_hit_rate: float = 0.0
    p50_cached_latency_ms: float = 0.0
    p99_cached_latency_ms: float = 0.0
    p50_computed_latency_ms: float = 0.0
    p99_computed_latency_ms: float = 0.0

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (the latency-reporting convention:
    p99 is an actual observed latency, never an interpolation)."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(q * len(sorted_values))  # 1-based nearest rank
    index = min(len(sorted_values) - 1, max(0, rank - 1))
    return sorted_values[index]


class StatsRecorder:
    """Thread-safe accumulator behind :meth:`PipelineServer.stats`."""

    #: Thread-safety contract, machine-checked by LOCK-GUARD: every
    #: counter is written by the batcher thread and read by snapshot
    #: callers, so all access goes through ``_lock``.
    _guarded_by = {
        "_lock": (
            "submitted",
            "completed",
            "failed",
            "rejected",
            "cancelled",
            "degraded",
            "batches",
            "cache_hits",
            "cache_misses",
            "coalesced_joins",
            "cache_evictions",
            "_batched_requests",
            "_started_at",
            "_stopped_at",
            "_uptime_before",
            "_latencies",
            "_cached_latencies",
            "_computed_latencies",
        ),
    }

    def __init__(self, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._cached_latencies: deque[float] = deque(maxlen=latency_window)
        self._computed_latencies: deque[float] = deque(
            maxlen=latency_window
        )
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.cancelled = 0
        self.degraded = 0
        self.batches = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced_joins = 0
        self.cache_evictions = 0
        self._batched_requests = 0
        self._started_at: float | None = None
        self._stopped_at: float | None = None
        #: Uptime banked from completed running periods.  Counters
        #: survive a stop/start cycle, so uptime must too: dividing
        #: all-time completions by only the latest run's elapsed time
        #: would inflate ``throughput_rps`` on every restart.
        self._uptime_before = 0.0

    # -- lifecycle -------------------------------------------------------
    def mark_started(self) -> None:
        with self._lock:
            if self._started_at is not None and self._stopped_at is not None:
                # Bank the previous running period before starting the
                # next one; counters are cumulative across restarts,
                # so the uptime they are divided by must be as well.
                self._uptime_before += self._stopped_at - self._started_at
            self._started_at = time.perf_counter()
            self._stopped_at = None

    def mark_stopped(self) -> None:
        with self._lock:
            if self._started_at is not None:
                self._stopped_at = time.perf_counter()

    # -- events ----------------------------------------------------------
    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_cancelled(self, count: int = 1) -> None:
        with self._lock:
            self.cancelled += count

    # -- response-cache events --------------------------------------------
    def record_cache_hit(
        self, latency_s: float | None, degraded: bool = False
    ) -> None:
        """One submission answered from the completed store."""
        with self._lock:
            self.cache_hits += 1
            self.completed += 1
            if degraded:
                self.degraded += 1
            if latency_s is not None:
                self._latencies.append(latency_s)
                self._cached_latencies.append(latency_s)

    def record_cache_miss(self) -> None:
        """One submission granted a key's single-flight leadership."""
        with self._lock:
            self.cache_misses += 1

    def record_coalesced_join(self) -> None:
        """One submission attached to an in-flight leader."""
        with self._lock:
            self.coalesced_joins += 1

    def record_followers_completed(
        self, latencies_s: list[float], degraded: int = 0
    ) -> None:
        """Joined requests completed by their leader's flush."""
        with self._lock:
            self.completed += len(latencies_s)
            self.degraded += degraded
            self._latencies.extend(latencies_s)
            self._cached_latencies.extend(latencies_s)

    def record_followers_failed(self, count: int) -> None:
        """Joined requests failed by their leader's failure."""
        with self._lock:
            self.failed += count

    def record_cache_evictions(self, count: int) -> None:
        with self._lock:
            self.cache_evictions += count

    # repro: allow[PARITY-ORPHAN] -- a metrics accumulator, not a
    # vectorized/scalar parity pair; counter correctness is covered by
    # tests/serving/test_server.py and result parity by
    # tests/serving/test_determinism.py.
    def record_batch(
        self, size: int, latencies_s: list[float], completed: int,
        failures: int = 0, degraded: int = 0,
    ) -> None:
        """One flush's ledger entry.  ``completed`` is explicit rather
        than inferred as ``size - failures``: a flush that dies mid-way
        (deliberate chaos crash, MemoryError) has demuxed only part of
        the batch, and the crash handler accounts for the remainder --
        inferring would double- or under-count exactly then."""
        with self._lock:
            self.batches += 1
            self._batched_requests += size
            self.completed += completed
            self.failed += failures
            self.degraded += degraded
            self._latencies.extend(latencies_s)
            self._computed_latencies.extend(latencies_s)

    # -- snapshot --------------------------------------------------------
    def snapshot(
        self, queue_depth: int, cache_entries: int = 0
    ) -> ServerStats:
        with self._lock:
            if self._started_at is None:
                uptime = self._uptime_before
            else:
                end = self._stopped_at
                if end is None:
                    end = time.perf_counter()
                uptime = self._uptime_before + (end - self._started_at)
            ordered = sorted(self._latencies)
            cached = sorted(self._cached_latencies)
            computed = sorted(self._computed_latencies)
            lookups = (
                self.cache_hits + self.cache_misses + self.coalesced_joins
            )
            return ServerStats(
                submitted=self.submitted,
                completed=self.completed,
                failed=self.failed,
                rejected=self.rejected,
                cancelled=self.cancelled,
                degraded=self.degraded,
                batches=self.batches,
                mean_batch_size=(
                    self._batched_requests / self.batches
                    if self.batches
                    else 0.0
                ),
                throughput_rps=(
                    self.completed / uptime if uptime > 0 else 0.0
                ),
                p50_latency_ms=1e3 * _percentile(ordered, 0.50),
                p99_latency_ms=1e3 * _percentile(ordered, 0.99),
                uptime_seconds=uptime,
                queue_depth=queue_depth,
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                coalesced_joins=self.coalesced_joins,
                cache_evictions=self.cache_evictions,
                cache_entries=cache_entries,
                cache_hit_rate=(
                    (self.cache_hits + self.coalesced_joins) / lookups
                    if lookups
                    else 0.0
                ),
                p50_cached_latency_ms=1e3 * _percentile(cached, 0.50),
                p99_cached_latency_ms=1e3 * _percentile(cached, 0.99),
                p50_computed_latency_ms=1e3 * _percentile(computed, 0.50),
                p99_computed_latency_ms=1e3 * _percentile(computed, 0.99),
            )

"""``repro.serving`` -- concurrent micro-batching inference serving.

Single-image requests from many client threads coalesce into
``infer_batch`` calls sized by load (``max_batch`` / ``max_wait_ms``),
with bounded-queue backpressure, per-request result demux, and bitwise
parity with serial ``pipeline.infer()`` regardless of how requests
interleave into batches.  See ``docs/serving.md``.

>>> from repro.api import ServingConfig, build_pipeline
>>> from repro.serving import PipelineServer
>>> with PipelineServer(pipeline, ServingConfig(max_batch=32)) as server:
...     pending = [server.submit(image) for image in images]
...     results = [p.result() for p in pending]
"""

from repro.serving.cache import ResponseCache, response_digest
from repro.serving.server import (
    BatcherCrash,
    PendingResult,
    PipelineServer,
    ServerClosed,
    ServerError,
    ServerOverloaded,
)
from repro.serving.stats import ServerStats

__all__ = [
    "BatcherCrash",
    "PipelineServer",
    "PendingResult",
    "ResponseCache",
    "ServerStats",
    "ServerError",
    "ServerClosed",
    "ServerOverloaded",
    "response_digest",
]

"""Output-space caging (after Gehr et al., AI2, S&P 2018).

The paper's ref [27] "checks for output feasibility against a
permissible output space".  The practical embodiment here: calibrate
the distribution of softmax outputs on clean data and flag outputs
that fall outside the permissible region (maximum confidence too low,
entropy too high, or invalid distribution).  Detection-only -- a
caged output is rejected, not repaired -- which is exactly how the
paper contrasts caging with its own masking/rollback approach.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.activations import softmax
from repro.nn.network import Sequential


class OutputCage:
    """Feasibility check on classifier outputs.

    Parameters
    ----------
    model:
        Logits model to cage.
    min_confidence_quantile:
        Calibration quantile for the minimum acceptable winning
        confidence (default: 1st percentile of clean outputs).
    """

    def __init__(
        self,
        model: Sequential,
        min_confidence_quantile: float = 0.01,
    ) -> None:
        if not 0.0 <= min_confidence_quantile < 1.0:
            raise ValueError("quantile must be in [0, 1)")
        self.model = model
        self.quantile = min_confidence_quantile
        self.min_confidence: float | None = None
        self.max_entropy: float | None = None

    def calibrate(self, x: np.ndarray, batch_size: int = 64) -> None:
        """Learn the permissible output region from clean inputs."""
        if len(x) == 0:
            raise ValueError("calibration set is empty")
        confidences = []
        entropies = []
        for start in range(0, len(x), batch_size):
            probs = softmax(self.model.forward(x[start : start + batch_size]))
            confidences.append(probs.max(axis=1))
            entropies.append(_entropy(probs))
        conf = np.concatenate(confidences)
        ent = np.concatenate(entropies)
        self.min_confidence = float(np.quantile(conf, self.quantile))
        self.max_entropy = float(np.quantile(ent, 1.0 - self.quantile))

    @property
    def calibrated(self) -> bool:
        return self.min_confidence is not None

    def check(self, logits: np.ndarray) -> np.ndarray:
        """Per-sample feasibility of a logits batch.

        Returns a boolean array: True = output inside the permissible
        region.  NaN/inf logits are always infeasible.
        """
        if not self.calibrated:
            raise RuntimeError("calibrate() must run before check()")
        logits = np.asarray(logits)
        finite = np.isfinite(logits).all(axis=1)
        # Clamp before softmax: corrupted logits can be +-1e38 and
        # would overflow the exponential even after the max shift.
        safe_logits = np.clip(
            np.where(np.isfinite(logits), logits, 0.0), -1e4, 1e4
        )
        probs = softmax(safe_logits)
        confident = probs.max(axis=1) >= self.min_confidence
        low_entropy = _entropy(probs) <= self.max_entropy
        return finite & confident & low_entropy

    def infer(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Classify with caging: returns (predictions, feasible).

        Predictions for infeasible outputs are still reported (the
        caller decides what a rejection means), mirroring how the
        qualifier's verdict accompanies rather than replaces the
        CNN output in the hybrid.
        """
        logits = self.model.forward(x)
        return logits.argmax(axis=1), self.check(logits)


def _entropy(probs: np.ndarray) -> np.ndarray:
    clipped = np.clip(probs, 1e-12, 1.0)
    return -(clipped * np.log(clipped)).sum(axis=1)

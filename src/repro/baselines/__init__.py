"""Comparison baselines the paper positions itself against.

Section II.D discusses two "caging" families:

* **output-space caging** (Gehr et al., AI2 [27]): check the
  classifier *output* against a permissible region --
  :mod:`repro.baselines.caging`;
* **activation-range supervision** (Geissler et al. [28]): saturate
  intermediate activations at calibrated per-layer bounds so faults
  cannot produce out-of-distribution magnitudes --
  :mod:`repro.baselines.ranger`.

Both detect-or-mask faults without redundant execution but, as the
paper argues, neither feeds dependable information back into the
model, and the bounds themselves must be derived from data.  The
fault-comparison bench (``benchmarks/test_baseline_comparison.py``)
measures all three approaches under identical weight-corruption
campaigns.
"""

from repro.baselines.caging import OutputCage
from repro.baselines.ranger import ActivationRangeGuard, RangeViolation

__all__ = ["OutputCage", "ActivationRangeGuard", "RangeViolation"]

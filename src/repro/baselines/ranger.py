"""Activation-range supervision (Geissler et al., SafeAI 2021).

The paper's ref [28]: "check the outputs of operations and if they
are larger or smaller than some preset and operation specific
saturation limit, the output saturates to that value.  Whilst this
approach preserves computing power vis a vis redundant execution, the
required memory bandwidth is substantially increased."

Implementation: calibrate per-layer (min, max) activation bounds on
clean data, then run inference with every layer output clipped into
its bounds.  Clipping *masks* faults (turning catastrophic
corruptions into bounded perturbations); the guard also *reports*
violations so campaigns can count detections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.network import Sequential


@dataclass
class RangeViolation:
    """One clipped activation event."""

    layer: str
    observed_min: float
    observed_max: float


class ActivationRangeGuard:
    """Per-layer activation bounds: calibrate, then supervise.

    Parameters
    ----------
    model:
        The network to supervise.
    margin:
        Fractional slack added to calibrated bounds (bounds observed
        on finite clean data underestimate the true activation
        support; 5% default).
    """

    def __init__(self, model: Sequential, margin: float = 0.05) -> None:
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.model = model
        self.margin = margin
        self.bounds: dict[str, tuple[float, float]] = {}

    # -- calibration ---------------------------------------------------
    def calibrate(self, x: np.ndarray, batch_size: int = 64) -> None:
        """Record per-layer activation extrema over clean inputs."""
        if len(x) == 0:
            raise ValueError("calibration set is empty")
        mins: dict[str, float] = {}
        maxs: dict[str, float] = {}
        for start in range(0, len(x), batch_size):
            batch = x[start : start + batch_size]
            out = batch
            for layer in self.model:
                out = layer.forward(out)
                lo = float(out.min())
                hi = float(out.max())
                mins[layer.name] = min(mins.get(layer.name, lo), lo)
                maxs[layer.name] = max(maxs.get(layer.name, hi), hi)
        self.bounds = {}
        for name in mins:
            lo, hi = mins[name], maxs[name]
            span = hi - lo
            slack = self.margin * span if span > 0 else self.margin
            self.bounds[name] = (lo - slack, hi + slack)

    @property
    def calibrated(self) -> bool:
        return bool(self.bounds)

    # -- supervised inference ----------------------------------------------
    def forward(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, list[RangeViolation]]:
        """Inference with clipping; returns (output, violations)."""
        if not self.calibrated:
            raise RuntimeError("calibrate() must run before forward()")
        violations: list[RangeViolation] = []
        out = x
        for layer in self.model:
            out = layer.forward(out)
            lo, hi = self.bounds[layer.name]
            observed_min = float(out.min())
            observed_max = float(out.max())
            if observed_min < lo or observed_max > hi:
                violations.append(
                    RangeViolation(layer.name, observed_min, observed_max)
                )
                out = np.clip(out, lo, hi)
        return out, violations

"""Partitioning a CNN into reliable (DCNN) and non-reliable execution.

The paper's insight: "not all classifications may be relevant for
reliability purposes and hence not all layers or portions of layers
need be executed reliably."  A :class:`HybridPartition` names exactly
which filters of which layers form the dependable CNN; everything else
runs natively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn.layers.conv import Conv2D
from repro.nn.network import Sequential
from repro.reliable.operators import operator_kinds, operator_multiplier


@dataclass(frozen=True)
class HybridPartition:
    """Which portions of the network execute reliably.

    Attributes
    ----------
    reliable_filters:
        Mapping of convolution-layer name -> filter indices executed
        through qualified operators.  The paper postulates "the
        determination of one (three dimensional) filter in the first
        convolutional layer"; the working default here is *two*
        filters of ``conv1`` (a Sobel-x and a Sobel-y stack) because
        the qualifier needs a direction-free edge magnitude --
        a single directional filter leaves gaps in contours parallel
        to its direction (see
        :meth:`repro.core.qualifier.ShapeQualifier.check_feature_map`).
    bifurcation_layer:
        Name of the layer whose reliable output bifurcates into the
        qualifier path (Figure 2).  Must be a key of
        ``reliable_filters``.
    redundancy:
        Operator kind for the reliable portion: ``"dmr"``, ``"tmr"``,
        or any kind registered with
        :func:`repro.reliable.operators.register_operator` (e.g. via
        the ``repro.api.OPERATORS`` registry).
    engine:
        Execution engine for the reliable portion: ``"auto"``
        (default; the speculate-then-verify vectorized engine exactly
        when its result is provably bit-identical, the scalar
        Algorithm 3 loop otherwise), ``"scalar"``, ``"vectorized"``,
        or any engine registered with
        :func:`repro.reliable.executor.register_engine` (e.g. via the
        ``repro.api.ENGINES`` registry).
    """

    reliable_filters: dict[str, tuple[int, ...]] = field(
        default_factory=lambda: {"conv1": (0, 1)}
    )
    bifurcation_layer: str = "conv1"
    redundancy: str = "dmr"
    engine: str = "auto"

    def __post_init__(self) -> None:
        from repro.reliable.executor import engine_names

        if self.engine != "auto" and self.engine not in engine_names():
            raise ValueError(
                f"engine must be 'auto' or a registered engine "
                f"({engine_names()}), got {self.engine!r}"
            )
        if self.bifurcation_layer not in self.reliable_filters:
            raise ValueError(
                f"bifurcation layer {self.bifurcation_layer!r} has no "
                "reliable filters configured"
            )
        if self.redundancy not in operator_kinds():
            raise ValueError(
                f"redundancy must be a registered operator kind "
                f"({operator_kinds()}), got {self.redundancy!r}"
            )
        if operator_multiplier(self.redundancy) < 2:
            # A single-execution operator (e.g. "plain") qualifies its
            # own result by assumption; a partition built on it would
            # certify verdicts with zero fault detection.  The
            # dependable CNN must actually be redundant.
            raise ValueError(
                f"redundancy {self.redundancy!r} executes only once per "
                "operation; the reliable partition requires a redundant "
                "operator (executions_per_op >= 2)"
            )
        for name, filters in self.reliable_filters.items():
            if len(filters) == 0:
                raise ValueError(f"empty filter set for layer {name!r}")
            if len(set(filters)) != len(filters):
                raise ValueError(f"duplicate filters for layer {name!r}")

    def validate_against(self, model: Sequential) -> None:
        """Check every referenced layer/filter exists in ``model``."""
        for name, filters in self.reliable_filters.items():
            layer = model.layer(name)  # KeyError when absent
            if not isinstance(layer, Conv2D):
                raise TypeError(
                    f"layer {name!r} is not a Conv2D; only convolution "
                    "filters can join the reliable partition"
                )
            bad = [f for f in filters if not 0 <= f < layer.out_channels]
            if bad:
                raise ValueError(
                    f"layer {name!r} has {layer.out_channels} filters; "
                    f"invalid indices {bad}"
                )

    def reliable_operation_count(
        self, model: Sequential, input_shape: tuple[int, ...]
    ) -> int:
        """Scalar multiply-accumulates executed reliably per image."""
        self.validate_against(model)
        total = 0
        shape = input_shape
        for layer in model:
            if layer.name in self.reliable_filters:
                conv: Conv2D = layer  # validated above
                per_filter = conv.operations_per_image(shape)
                per_filter //= conv.out_channels
                total += per_filter * len(self.reliable_filters[layer.name])
            shape = layer.output_shape(shape)
        return total

    def redundancy_multiplier(self) -> int:
        """Executions per qualified operation for the chosen redundancy
        (the registered operator class's ``executions_per_op``)."""
        return operator_multiplier(self.redundancy)

"""Hybrid CNN architectures (paper Figures 1 and 2).

Two shapes of the same idea:

* :class:`ParallelHybridCNN` (Figure 1): the CNN classifies as usual;
  an *independent* reliably-executed shape-recognition block runs on
  the same input, and the reliable-result block qualifies the CNN's
  safety-relevant class with the block's verdict.
* :class:`IntegratedHybridCNN` (Figure 2): the early convolution is
  shared.  Its reliable partition (the DCNN -- e.g. one Sobel-pinned
  filter of ``conv1``) is executed with redundant arithmetic; the
  data path *bifurcates* there: the reliable feature map feeds the
  qualifier while the full feature stack continues through the
  non-reliable remainder of the CNN.

Both produce a :class:`HybridResult` via the same
:class:`ReliableResultBlock` combination logic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.partition import HybridPartition
from repro.core.qualifier import QualifierVerdict, ShapeQualifier
from repro.nn.layers.activations import softmax
from repro.nn.network import Sequential
from repro.reliable.executor import ExecutionReport, ReliableConv2D


class Decision(enum.Enum):
    """Final verdict of the reliable-result block."""

    #: CNN says safety class, qualifier confirms: dependable positive.
    CONFIRMED = "confirmed"
    #: CNN says safety class, qualifier denies: suppressed (prevents a
    #: false positive on the safety class).
    REJECTED_BY_QUALIFIER = "rejected_by_qualifier"
    #: CNN predicts a non-safety class; used without qualification
    #: ("classifications that are not considered safety critical ...
    #: can be used without any qualification").
    NOT_SAFETY_CRITICAL = "not_safety_critical"
    #: Qualifier found the shape but the CNN disagreed: flagged for a
    #: supervisory layer (possible CNN false negative).
    SHAPE_WITHOUT_CLASS = "shape_without_class"
    #: The qualifier's own redundant execution failed persistently --
    #: the dependable path is unavailable and the safety class cannot
    #: be confirmed.
    QUALIFIER_UNAVAILABLE = "qualifier_unavailable"


@dataclass
class HybridResult:
    """Everything the hybrid network produces for one input.

    Attributes
    ----------
    probabilities:
        Softmax class confidences from the (non-reliable) CNN.
    predicted_class:
        Argmax class index.
    verdict:
        The qualifier's :class:`QualifierVerdict`.
    decision:
        The reliable-result combination (see :class:`Decision`).
    reliable_report:
        Diagnostics of the reliable execution (integrated hybrid
        only; None for the parallel architecture).
    """

    probabilities: np.ndarray
    predicted_class: int
    verdict: QualifierVerdict
    decision: Decision
    reliable_report: ExecutionReport | None = None

    @property
    def confirmed(self) -> bool:
        """True only for a dependable positive on the safety class."""
        return self.decision is Decision.CONFIRMED


class ReliableResultBlock:
    """Combine CNN output with the qualifier verdict (Figures 1 and 2).

    Parameters
    ----------
    safety_class:
        Index of the class requiring qualification (the "Stop" sign).
    """

    def __init__(self, safety_class: int) -> None:
        self.safety_class = safety_class

    def combine(
        self, probabilities: np.ndarray, verdict: QualifierVerdict
    ) -> tuple[int, Decision]:
        predicted = int(np.argmax(probabilities))
        if not verdict.reliable:
            # The dependable path itself failed; never confirm.
            if predicted == self.safety_class:
                return predicted, Decision.QUALIFIER_UNAVAILABLE
            return predicted, Decision.NOT_SAFETY_CRITICAL
        if predicted == self.safety_class:
            if verdict.matches:
                return predicted, Decision.CONFIRMED
            return predicted, Decision.REJECTED_BY_QUALIFIER
        if verdict.matches:
            return predicted, Decision.SHAPE_WITHOUT_CLASS
        return predicted, Decision.NOT_SAFETY_CRITICAL


class ParallelHybridCNN:
    """Figure 1: independent qualifier in parallel with the CNN.

    Parameters
    ----------
    model:
        Trained classifier ending in logits.
    qualifier:
        The reliable shape qualifier, run on the raw input image.
    safety_class:
        Class index to be qualified.
    """

    def __init__(
        self,
        model: Sequential,
        qualifier: ShapeQualifier,
        safety_class: int,
    ) -> None:
        self.model = model
        self.qualifier = qualifier
        self.result_block = ReliableResultBlock(safety_class)

    def infer(self, image: np.ndarray) -> HybridResult:
        """Classify one ``(3, h, w)`` image with qualification."""
        logits = self.model.forward(image[None])
        probabilities = softmax(logits)[0]
        verdict = self.qualifier.check(image)
        predicted, decision = self.result_block.combine(
            probabilities, verdict
        )
        return HybridResult(probabilities, predicted, verdict, decision)


class IntegratedHybridCNN:
    """Figure 2: shared early layers, bifurcating reliable data path.

    The partition's bifurcation layer is executed in two parts:

    * reliable filters (the DCNN) through
      :class:`~repro.reliable.executor.ReliableConv2D` with qualified
      redundant arithmetic;
    * remaining filters natively.

    The reliable filters' feature maps feed the qualifier
    (:meth:`ShapeQualifier.check_feature_map`); the complete feature
    stack continues through the rest of the CNN.  With the reliable
    filter pinned to a Sobel stack during training (see
    :class:`repro.nn.trainer.FilterPin`) the bifurcated map is an edge
    response the dependable model understands.

    Parameters
    ----------
    model:
        Trained classifier whose first convolution carries the pinned
        dependable filter(s).
    qualifier:
        Shape qualifier consuming the bifurcated feature map.
    partition:
        The reliable/non-reliable split (defaults to the paper's: one
        filter of ``conv1`` under DMR).
    safety_class:
        Class index to be qualified.
    """

    def __init__(
        self,
        model: Sequential,
        qualifier: ShapeQualifier,
        safety_class: int,
        partition: HybridPartition | None = None,
    ) -> None:
        self.model = model
        self.qualifier = qualifier
        self.partition = partition or HybridPartition()
        self.partition.validate_against(model)
        self.result_block = ReliableResultBlock(safety_class)
        self._bif_index = model.index_of(self.partition.bifurcation_layer)
        self._bif_layer = model[self._bif_index]
        self._reliable_conv = ReliableConv2D(
            self._bif_layer,
            operator=self.partition.redundancy,
            on_persistent_failure="mark",
        )

    def infer(self, image: np.ndarray) -> HybridResult:
        """Classify one ``(3, h, w)`` image through the hybrid path."""
        x = image[None]
        # Shared prefix up to the bifurcation layer (usually empty:
        # conv1 is the first layer).
        x = self.model.forward_until(x, self._bif_index)
        reliable_filters = list(
            self.partition.reliable_filters[self.partition.bifurcation_layer]
        )
        features, report = self._reliable_conv.forward(
            x, filters=reliable_filters
        )
        # Bifurcation: reliable maps to the qualifier...
        reliable_map = features[0, reliable_filters]
        if report.persistent_failures:
            verdict = QualifierVerdict(
                False, float("inf"), "", reliable=False
            )
        else:
            verdict = self.qualifier.check_feature_map(reliable_map)
        # ... and the full stack onward through the CNN.
        logits = self.model.forward_from(features, self._bif_index + 1)
        probabilities = softmax(logits)[0]
        predicted, decision = self.result_block.combine(
            probabilities, verdict
        )
        return HybridResult(
            probabilities, predicted, verdict, decision,
            reliable_report=report,
        )

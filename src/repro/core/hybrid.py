"""Hybrid CNN architectures (paper Figures 1 and 2).

Two shapes of the same idea:

* :class:`ParallelHybridCNN` (Figure 1): the CNN classifies as usual;
  an *independent* reliably-executed shape-recognition block runs on
  the same input, and the reliable-result block qualifies the CNN's
  safety-relevant class with the block's verdict.
* :class:`IntegratedHybridCNN` (Figure 2): the early convolution is
  shared.  Its reliable partition (the DCNN -- e.g. one Sobel-pinned
  filter of ``conv1``) is executed with redundant arithmetic; the
  data path *bifurcates* there: the reliable feature map feeds the
  qualifier while the full feature stack continues through the
  non-reliable remainder of the CNN.

Both produce a :class:`HybridResult` via the same
:class:`ReliableResultBlock` combination logic.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.core.partition import HybridPartition
from repro.core.qualifier import QualifierVerdict, ShapeQualifier
from repro.nn.layers.activations import softmax
from repro.nn.layers.dense import Dense
from repro.nn.network import Sequential
from repro.reliable.executor import ExecutionReport, ReliableConv2D


@contextmanager
def _batch_invariant_inference(model: Sequential):
    """Run the model's Dense layers in batch-size-invariant mode.

    A model serving a hybrid must produce bitwise-identical outputs
    whether images arrive one at a time or batched (``infer`` vs
    ``infer_batch``); Dense is the one layer whose naive batched GEMM
    breaks that.  At n=1 the invariant form equals the blocked GEMM
    bitwise, so entering this context never changes single-image
    results.  Scoped to each inference call -- the model object may be
    shared with baselines, calibration or training, which keep the
    blocked GEMM outside hybrid inference.
    """
    dense_layers = [
        layer for layer in model if isinstance(layer, Dense)
    ]
    previous = [layer.batch_invariant for layer in dense_layers]
    for layer in dense_layers:
        layer.batch_invariant = True
    try:
        yield
    finally:
        for layer, value in zip(dense_layers, previous):
            layer.batch_invariant = value


def _qualify_image_batch(qualifier, views: np.ndarray) -> list[QualifierVerdict]:
    """Batched qualification with a per-image fallback.

    Architectures accept any registered qualifier object; one exposing
    ``check_batch`` (e.g. :class:`~repro.core.qualifier.ShapeQualifier`
    with its engine policy) qualifies the whole stack in vectorized
    passes, anything else degrades to the per-image loop.
    """
    check_batch = getattr(qualifier, "check_batch", None)
    if check_batch is not None:
        return check_batch(views)
    return [qualifier.check(view) for view in views]


def _qualify_feature_map_batch(
    qualifier, feature_maps: np.ndarray
) -> list[QualifierVerdict]:
    """Batched feature-map qualification with a per-image fallback."""
    check_batch = getattr(qualifier, "check_feature_map_batch", None)
    if check_batch is not None:
        return check_batch(feature_maps)
    return [qualifier.check_feature_map(fm) for fm in feature_maps]


class Decision(enum.Enum):
    """Final verdict of the reliable-result block."""

    #: CNN says safety class, qualifier confirms: dependable positive.
    CONFIRMED = "confirmed"
    #: CNN says safety class, qualifier denies: suppressed (prevents a
    #: false positive on the safety class).
    REJECTED_BY_QUALIFIER = "rejected_by_qualifier"
    #: CNN predicts a non-safety class; used without qualification
    #: ("classifications that are not considered safety critical ...
    #: can be used without any qualification").
    NOT_SAFETY_CRITICAL = "not_safety_critical"
    #: Qualifier found the shape but the CNN disagreed: flagged for a
    #: supervisory layer (possible CNN false negative).
    SHAPE_WITHOUT_CLASS = "shape_without_class"
    #: The qualifier's own redundant execution failed persistently --
    #: the dependable path is unavailable and the safety class cannot
    #: be confirmed.
    QUALIFIER_UNAVAILABLE = "qualifier_unavailable"


#: Decisions in which the qualifier flagged the result for attention
#: beyond normal use: a suppressed safety-class positive, a shape the
#: CNN missed, or an unavailable dependable path.  The serving layer
#: routes these to its graceful-degradation hook
#: (:class:`repro.serving.server.PipelineServer`); a supervisory layer
#: decides what "degraded" means operationally (slow down, hand off,
#: alert).
FLAGGED_DECISIONS = frozenset({
    Decision.REJECTED_BY_QUALIFIER,
    Decision.SHAPE_WITHOUT_CLASS,
    Decision.QUALIFIER_UNAVAILABLE,
})


@dataclass
class HybridResult:
    """Everything the hybrid network produces for one input.

    Attributes
    ----------
    probabilities:
        Softmax class confidences from the (non-reliable) CNN.
    predicted_class:
        Argmax class index.
    verdict:
        The qualifier's :class:`QualifierVerdict`.
    decision:
        The reliable-result combination (see :class:`Decision`).
    reliable_report:
        Diagnostics of the reliable execution (integrated hybrid
        only; None for the parallel architecture).
    """

    probabilities: np.ndarray
    predicted_class: int
    verdict: QualifierVerdict
    decision: Decision
    reliable_report: ExecutionReport | None = None

    @property
    def confirmed(self) -> bool:
        """True only for a dependable positive on the safety class."""
        return self.decision is Decision.CONFIRMED

    @property
    def flagged(self) -> bool:
        """True when the qualifier flagged this result for supervisory
        attention (see :data:`FLAGGED_DECISIONS`)."""
        return self.decision in FLAGGED_DECISIONS


class ReliableResultBlock:
    """Combine CNN output with the qualifier verdict (Figures 1 and 2).

    Parameters
    ----------
    safety_class:
        Index of the class requiring qualification (the "Stop" sign).
    """

    def __init__(self, safety_class: int) -> None:
        self.safety_class = safety_class

    def combine(
        self, probabilities: np.ndarray, verdict: QualifierVerdict
    ) -> tuple[int, Decision]:
        predicted = int(np.argmax(probabilities))
        if not verdict.reliable:
            # The dependable path itself failed; never confirm.
            if predicted == self.safety_class:
                return predicted, Decision.QUALIFIER_UNAVAILABLE
            return predicted, Decision.NOT_SAFETY_CRITICAL
        if predicted == self.safety_class:
            if verdict.matches:
                return predicted, Decision.CONFIRMED
            return predicted, Decision.REJECTED_BY_QUALIFIER
        if verdict.matches:
            return predicted, Decision.SHAPE_WITHOUT_CLASS
        return predicted, Decision.NOT_SAFETY_CRITICAL


class ParallelHybridCNN:
    """Figure 1: independent qualifier in parallel with the CNN.

    Parameters
    ----------
    model:
        Trained classifier ending in logits.
    qualifier:
        The reliable shape qualifier, run on the raw input image.
    safety_class:
        Class index to be qualified.
    """

    def __init__(
        self,
        model: Sequential,
        qualifier: ShapeQualifier,
        safety_class: int,
    ) -> None:
        self.model = model
        self.qualifier = qualifier
        self.result_block = ReliableResultBlock(safety_class)

    def infer(
        self,
        image: np.ndarray,
        qualifier_view: np.ndarray | None = None,
    ) -> HybridResult:
        """Classify one ``(3, h, w)`` image with qualification.

        ``qualifier_view`` optionally gives the qualifier a different
        rendering of the same scene (e.g. the CNN at its 32px training
        resolution, the shape detector at 128px); by default the
        qualifier sees ``image`` itself.
        """
        # Cast exactly like infer_batch so single and batched calls
        # feed the qualifier identical pixels (the model casts to
        # float32 internally either way).
        image = np.asarray(image, dtype=np.float32)
        with _batch_invariant_inference(self.model):
            logits = self.model.forward(image[None])
        probabilities = softmax(logits)[0]
        verdict = self.qualifier.check(
            image if qualifier_view is None
            else np.asarray(qualifier_view, dtype=np.float32)
        )
        predicted, decision = self.result_block.combine(
            probabilities, verdict
        )
        return HybridResult(probabilities, predicted, verdict, decision)

    def infer_batch(
        self,
        images: np.ndarray,
        qualifier_views: np.ndarray | None = None,
    ) -> list[HybridResult]:
        """Classify ``(n, 3, h, w)`` images in one vectorised pass.

        The CNN half runs as a single batched
        :meth:`~repro.nn.network.Sequential.forward` instead of n
        per-image passes, and the qualifier half runs through
        :meth:`ShapeQualifier.check_batch` -- whole-batch edge maps,
        array labelling and one SAX/MINDIST pass under the batched
        engine (:mod:`repro.core.qualifier_batch`).  Probabilities,
        verdicts and decisions are bitwise identical to n
        :meth:`infer` calls: every layer's batched arithmetic is
        per-sample shape-stable (see
        :class:`repro.nn.layers.dense.Dense`) and the qualifier
        engine's ``"auto"`` policy vectorizes only when provably
        bit-identical.
        """
        images = np.asarray(images, dtype=np.float32)
        if qualifier_views is not None and len(qualifier_views) != len(
            images
        ):
            raise ValueError(
                f"{len(images)} images but {len(qualifier_views)} "
                "qualifier views; each image needs exactly one view"
            )
        if len(images) == 0:
            return []
        with _batch_invariant_inference(self.model):
            logits = self.model.forward(images)
        probabilities = softmax(logits)
        if qualifier_views is None:
            verdicts = _qualify_image_batch(self.qualifier, images)
        else:
            try:
                views = np.asarray(qualifier_views, dtype=np.float32)
            except ValueError:
                # Ragged views (one resolution per scene) cannot stack;
                # qualify per image exactly as n infer() calls would.
                views = None
            if views is None:
                verdicts = [
                    self.qualifier.check(
                        np.asarray(view, dtype=np.float32)
                    )
                    for view in qualifier_views
                ]
            else:
                verdicts = _qualify_image_batch(self.qualifier, views)
        results = []
        for i in range(len(images)):
            predicted, decision = self.result_block.combine(
                probabilities[i], verdicts[i]
            )
            results.append(
                HybridResult(
                    probabilities[i], predicted, verdicts[i], decision
                )
            )
        return results


class IntegratedHybridCNN:
    """Figure 2: shared early layers, bifurcating reliable data path.

    The partition's bifurcation layer is executed in two parts:

    * reliable filters (the DCNN) through
      :class:`~repro.reliable.executor.ReliableConv2D` with qualified
      redundant arithmetic;
    * remaining filters natively.

    The reliable filters' feature maps feed the qualifier
    (:meth:`ShapeQualifier.check_feature_map`); the complete feature
    stack continues through the rest of the CNN.  With the reliable
    filter pinned to a Sobel stack during training (see
    :class:`repro.nn.trainer.FilterPin`) the bifurcated map is an edge
    response the dependable model understands.

    Parameters
    ----------
    model:
        Trained classifier whose first convolution carries the pinned
        dependable filter(s).
    qualifier:
        Shape qualifier consuming the bifurcated feature map.
    partition:
        The reliable/non-reliable split (defaults to the paper's: one
        filter of ``conv1`` under DMR).
    safety_class:
        Class index to be qualified.
    """

    def __init__(
        self,
        model: Sequential,
        qualifier: ShapeQualifier,
        safety_class: int,
        partition: HybridPartition | None = None,
    ) -> None:
        self.model = model
        self.qualifier = qualifier
        self.partition = partition or HybridPartition()
        self.partition.validate_against(model)
        self.result_block = ReliableResultBlock(safety_class)
        self._bif_index = model.index_of(self.partition.bifurcation_layer)
        self._bif_layer = model[self._bif_index]
        self._reliable_conv = ReliableConv2D(
            self._bif_layer,
            operator=self.partition.redundancy,
            on_persistent_failure="mark",
            engine=self.partition.engine,
        )

    def infer(self, image: np.ndarray) -> HybridResult:
        """Classify one ``(3, h, w)`` image through the hybrid path."""
        return self._infer_stack(
            np.asarray(image, dtype=np.float32)[None]
        )[0]

    def infer_batch(self, images: np.ndarray) -> list[HybridResult]:
        """Classify ``(n, 3, h, w)`` images in one vectorised pass.

        The shared prefix, the reliable partition
        (:class:`~repro.reliable.executor.ReliableConv2D` is already
        batch-aware) and the non-reliable remainder each run once on
        the whole batch; only the per-shape qualifier stays a
        per-image loop.  Probabilities and decisions are bitwise
        identical to n :meth:`infer` calls; the reliable executor
        allocates its leaky bucket per image, so even abort points
        match single-image inference.  Each result's
        ``reliable_report`` is that image's slice of the batched
        :class:`~repro.reliable.executor.ExecutionReport`
        (``report.per_image``), equivalent counter-for-counter to the
        report the same image would get from :meth:`infer` --
        ``elapsed_seconds`` aside, which repeats the batch wall time.
        A custom engine that does not populate ``per_image`` degrades
        to attaching the aggregate report to every result.
        """
        return self._infer_stack(np.asarray(images, dtype=np.float32))

    def _infer_stack(self, x: np.ndarray) -> list[HybridResult]:
        if len(x) == 0:
            return []
        with _batch_invariant_inference(self.model):
            return self._infer_stack_invariant(x)

    def _infer_stack_invariant(self, x: np.ndarray) -> list[HybridResult]:
        # Shared prefix up to the bifurcation layer (usually empty:
        # conv1 is the first layer).
        x = self.model.forward_until(x, self._bif_index)
        reliable_filters = list(
            self.partition.reliable_filters[self.partition.bifurcation_layer]
        )
        features, report = self._reliable_conv.forward(
            x, filters=reliable_filters
        )
        # Images whose dependable arithmetic aborted persistently:
        # their verdict is unavailable, never computed from NaN maps.
        failed_images = {pos[0] for pos in report.failed_outputs}
        # The full stack continues onward through the CNN...
        logits = self.model.forward_from(features, self._bif_index + 1)
        probabilities = softmax(logits)
        # ... while the reliable maps bifurcate to the qualifier, all
        # surviving images in one batched pass.
        verdicts: list[QualifierVerdict | None] = [
            QualifierVerdict.unavailable() if i in failed_images else None
            for i in range(len(features))
        ]
        alive = [i for i in range(len(features)) if i not in failed_images]
        if alive:
            stacked = features[np.ix_(alive, reliable_filters)]
            for i, verdict in zip(
                alive, _qualify_feature_map_batch(self.qualifier, stacked)
            ):
                verdicts[i] = verdict
        # Per-image report attribution: each result carries its own
        # slice of the batched execution, so batch and serial paths
        # report equivalently.  Engines that leave per_image empty
        # (custom registrations) fall back to the aggregate.
        per_image = (
            report.per_image
            if len(report.per_image) == len(features)
            else None
        )
        results = []
        for i in range(len(features)):
            predicted, decision = self.result_block.combine(
                probabilities[i], verdicts[i]
            )
            results.append(HybridResult(
                probabilities[i], predicted, verdicts[i], decision,
                reliable_report=(
                    per_image[i] if per_image is not None else report
                ),
            ))
        return results

"""Analytic reliability model: the "guarantee" behind the title.

The hybrid's safety argument is structural: the *confirmed* decision
for the safety class depends only on (a) arithmetic executed through
qualified redundant operators with rollback and (b) the deterministic
qualifier, itself redundantly executed.  This module quantifies the
residual risk of that path and the cost saved against whole-network
duplication.

Model assumptions (stated, so they can be challenged):

* per-operation fault probability ``p`` -- each scalar multiply or
  add is independently corrupted with probability ``p`` (transient
  SEU model);
* a corrupted result is wrong (value-preserving flips are counted as
  faults that happen to be harmless, making every figure here an
  upper bound);
* two independently corrupted executions collide on the same wrong
  value with probability ``collision`` (for uniform single-bit flips
  in a 32-bit word this is 1/32: both flips must pick the same bit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import HybridPartition
from repro.nn.network import Sequential
from repro.reliable.operators import operator_masks


def plain_sdc_probability(p: float, n_ops: int) -> float:
    """P(at least one undetected corrupt op) without any protection.

    Every fault is silent for Algorithm 1 (its qualifier is a preset
    True): ``1 - (1 - p)^n``.
    """
    _check_probability(p)
    if n_ops < 0:
        raise ValueError("n_ops must be >= 0")
    return float(1.0 - (1.0 - p) ** n_ops)


def dmr_residual_risk(
    p: float, n_ops: int, collision: float = 1.0 / 32.0
) -> float:
    """Residual SDC probability under dual execution + comparison.

    A DMR operation is silently wrong only when *both* executions are
    hit and produce the same wrong value: ``p^2 * collision`` per
    operation.
    """
    _check_probability(p)
    _check_probability(collision)
    per_op = p * p * collision
    return float(1.0 - (1.0 - per_op) ** n_ops)


def tmr_residual_risk(
    p: float, n_ops: int, collision: float = 1.0 / 32.0
) -> float:
    """Residual SDC probability under triple execution + voting.

    A TMR vote elects a wrong value when at least two of three
    executions collide on the same wrong value: to first order
    ``3 * p^2 * collision`` per operation.
    """
    _check_probability(p)
    _check_probability(collision)
    per_op = 3.0 * p * p * collision
    return float(1.0 - (1.0 - min(per_op, 1.0)) ** n_ops)


def bucket_overflow_probability(
    p_error: float,
    n_ops: int,
    factor: int = 2,
    ceiling: int | None = None,
) -> float:
    """P(leaky bucket overflows within ``n_ops`` operations).

    Exact Markov-chain evaluation: state = bucket level, transition
    +``factor`` (capped) with probability ``p_error``, -1 (floored)
    otherwise.  This is the *availability* side of Algorithm 3 --- how
    likely a transient-fault environment is to trip the persistent-
    failure report anyway.
    """
    _check_probability(p_error)
    if ceiling is None:
        ceiling = 2 * factor - 1
    if ceiling < factor:
        raise ValueError("ceiling must be >= factor")
    # States 0..ceiling-1 live, state 'ceiling' absorbing (overflow).
    n_states = ceiling + 1
    dist = np.zeros(n_states)
    dist[0] = 1.0
    for _ in range(n_ops):
        nxt = np.zeros(n_states)
        nxt[ceiling] = dist[ceiling]  # absorbing
        for level in range(ceiling):
            mass = dist[level]
            # repro: allow[FLOAT-EQ] -- analytic probability mass
            # (sums of non-negative products), skipping empty chain
            # states; not a redundancy/word comparison.
            if mass == 0.0:
                continue
            up = min(level + factor, ceiling)
            nxt[up] += mass * p_error
            nxt[max(level - 1, 0)] += mass * (1.0 - p_error)
        dist = nxt
    return float(dist[ceiling])


@dataclass
class CostModel:
    """Computation cost of protection strategies for one model.

    All counts are scalar multiply-accumulates per inference.  The
    qualifier's cost is charged to the hybrid; it is estimated as the
    dominant terms of its pipeline (gradient correlation if run on the
    raw image, plus contour walk and SAX encoding).
    """

    model: Sequential
    input_shape: tuple[int, ...]
    partition: HybridPartition

    def native_ops(self) -> int:
        """Unprotected inference cost."""
        return sum(self.model.operation_counts(self.input_shape).values())

    def full_duplication_ops(self, copies: int = 2) -> int:
        """Whole-network redundancy: every op executed ``copies`` times."""
        if copies < 2:
            raise ValueError("duplication needs >= 2 copies")
        return copies * self.native_ops()

    def qualifier_ops(self) -> int:
        """Estimated qualifier cost for the integrated hybrid.

        The bifurcated feature map is already computed by the shared
        conv; the qualifier adds thresholding (1 op/pixel), the
        contour walk (~8 ops per boundary pixel, boundary <= 4*(h+w))
        and SAX (~3 ops per series sample).  Dominated by the
        threshold pass.
        """
        shape = self.input_shape
        for layer in self.model:
            if layer.name == self.partition.bifurcation_layer:
                shape = layer.output_shape(shape)
                break
            shape = layer.output_shape(shape)
        _, h, w = shape
        threshold_pass = h * w
        contour_walk = 8 * 4 * (h + w)
        sax_cost = 3 * 128
        return threshold_pass + contour_walk + sax_cost

    def hybrid_ops(self) -> int:
        """Hybrid cost: native net + extra redundant executions of the
        reliable partition + the qualifier."""
        reliable = self.partition.reliable_operation_count(
            self.model, self.input_shape
        )
        extra_copies = self.partition.redundancy_multiplier() - 1
        return self.native_ops() + extra_copies * reliable + self.qualifier_ops()

    def savings_vs_duplication(self) -> float:
        """Fraction of the duplicated cost the hybrid avoids."""
        dup = self.full_duplication_ops(
            copies=self.partition.redundancy_multiplier()
        )
        return 1.0 - self.hybrid_ops() / dup


@dataclass
class ReliabilityGuarantee:
    """End-to-end guarantee statement for a hybrid configuration.

    Parameters
    ----------
    model, input_shape, partition:
        The hybrid configuration under analysis.
    fault_probability:
        Per-operation transient fault probability ``p``.
    collision:
        Same-wrong-value collision probability for redundant
        executions (see module docstring).
    """

    model: Sequential
    input_shape: tuple[int, ...]
    partition: HybridPartition
    fault_probability: float = 1e-7
    collision: float = 1.0 / 32.0

    def reliable_ops(self) -> int:
        return self.partition.reliable_operation_count(
            self.model, self.input_shape
        )

    def unprotected_sdc(self) -> float:
        """SDC probability of the plain CNN's full inference."""
        total = sum(self.model.operation_counts(self.input_shape).values())
        return plain_sdc_probability(self.fault_probability, total)

    def protected_path_sdc(self) -> float:
        """Residual SDC of the dependable path (the guarantee).

        Only the reliable partition and the (doubly-executed)
        qualifier feed the confirmed decision; both are protected by
        comparison, leaving the collision residual.
        """
        n = self.reliable_ops()
        masks = operator_masks(self.partition.redundancy)
        copies = self.partition.redundancy_multiplier()
        if masks and copies == 3:
            return tmr_residual_risk(self.fault_probability, n,
                                     self.collision)
        if not masks and copies == 2:
            return dmr_residual_risk(self.fault_probability, n,
                                     self.collision)
        # A custom operator kind the analytic model has no formula
        # for: refuse loudly rather than publish wrong numbers.
        raise NotImplementedError(
            f"no analytic residual-risk model for operator kind "
            f"{self.partition.redundancy!r} ({copies} copies, "
            f"masks_faults={masks}); only 2-copy detection (dmr) and "
            "3-copy voting (tmr) are modelled"
        )

    def availability_loss(self) -> float:
        """P(the reliable path aborts on transients) per inference."""
        # Per-operation *detected* error probability under redundancy:
        # any disagreement between copies.
        p = self.fault_probability
        copies = self.partition.redundancy_multiplier()
        p_detect = 1.0 - (1.0 - p) ** copies  # >= 1 copy hit
        return bucket_overflow_probability(p_detect, self.reliable_ops())

    def improvement_factor(self) -> float:
        """Unprotected SDC / protected-path SDC (higher is better)."""
        protected = self.protected_path_sdc()
        # repro: allow[FLOAT-EQ] -- division-by-zero guard on an
        # analytic SDC probability; not a redundancy/word comparison.
        if protected == 0.0:
            return float("inf")
        return self.unprotected_sdc() / protected

    def summary(self) -> str:
        cost = CostModel(self.model, self.input_shape, self.partition)
        return "\n".join([
            f"fault probability per op:     {self.fault_probability:.2e}",
            f"reliable ops per inference:   {self.reliable_ops():,}",
            f"unprotected CNN SDC:          {self.unprotected_sdc():.3e}",
            f"dependable-path residual SDC: {self.protected_path_sdc():.3e}",
            f"improvement factor:           {self.improvement_factor():.3e}",
            f"availability loss (aborts):   {self.availability_loss():.3e}",
            f"hybrid ops vs duplication:    "
            f"{cost.hybrid_ops():,} vs {cost.full_duplication_ops():,} "
            f"({100 * cost.savings_vs_duplication():.1f}% saved)",
        ])


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability {p} outside [0, 1]")

"""The shape qualifier: the dependable block of the hybrid CNN.

The qualifier decides, deterministically and explainably, whether an
image (or a reliable feature map) contains the safety-relevant shape
-- for the paper's use-case, the octagon of a "Stop" sign.  Its
pipeline is the paper's Figure 3: edge map -> largest contour ->
centroid-to-edge distance series -> SAX word -> comparison against a
template word via a bounded distance.

The qualifier is itself a *reliable* block: its verdict is produced by
temporally-redundant execution (the pipeline runs twice and the runs
must agree), wrapped in the same checkpoint/rollback machinery used
for the convolution arithmetic.  A surrogate-function bound (ref [26])
holds: the SAX distance is bounded a priori, so the accept/reject
threshold can be fixed during certification.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.data.shapes2d import regular_polygon
from repro.reliable.checkpoint import CheckpointedSegment, RollbackPolicy
from repro.sax.distance import (
    mindist_profile,
    rotation_index_tensor,
    word_indices,
)
from repro.sax.sax import SaxEncoder
from repro.vision.contours import largest_contour
from repro.vision.edges import edge_map
from repro.vision.morphology import binary_dilate
from repro.vision.series import centroid_distance_series

#: Number of samples in the centroid-distance series (paper Fig. 3
#: uses a comparable resolution; 128 keeps eight octagon corners at
#: 16 samples per corner period).
SERIES_SAMPLES = 128

#: Execution strategies for batched qualification.  ``"auto"`` uses
#: the batched engine (:mod:`repro.core.qualifier_batch`) exactly when
#: it is provably bit-identical to per-image scalar calls, mirroring
#: the :class:`~repro.reliable.executor.ReliableConv2D` engine policy;
#: ``"batched"`` forces it, ``"scalar"`` pins the per-image loop.
QUALIFIER_ENGINES = ("auto", "batched", "scalar")


def _polygon_series(sides: int, n_samples: int = SERIES_SAMPLES
                    ) -> np.ndarray:
    """Ideal centroid-distance series of a regular polygon."""
    vertices = regular_polygon((0.0, 0.0), 100.0, sides,
                               rotation=np.pi / sides)
    # Dense polygon boundary: interpolate points along each edge.
    points = []
    per_edge = max(8, (4 * n_samples) // sides)
    for i in range(sides):
        a = vertices[i]
        b = vertices[(i + 1) % sides]
        for t in np.linspace(0.0, 1.0, per_edge, endpoint=False):
            points.append(a + t * (b - a))
    return centroid_distance_series(np.array(points), n_samples=n_samples)


_SIDES = {
    "triangle": 3, "square": 4, "diamond": 4,
    "pentagon": 5, "hexagon": 6, "octagon": 8,
}


def shape_template_word(
    shape: str,
    encoder: SaxEncoder,
    n_samples: int = SERIES_SAMPLES,
) -> str:
    """Canonical SAX word of an ideal shape (phase offset zero).

    Template words are computed from geometry, not training data --
    they are the "well understood data sets" of the dependable path.
    See :func:`shape_template_words` for the phase-robust variant set
    the qualifier actually matches against.
    """
    return shape_template_words(shape, encoder, n_samples)[0]


def shape_template_words(
    shape: str,
    encoder: SaxEncoder,
    n_samples: int = SERIES_SAMPLES,
) -> list[str]:
    """All sub-symbol phase variants of a shape's template word.

    A centroid-distance signature is periodic in the boundary angle;
    PAA segments sample that periodic signal, so the word depends on
    the (arbitrary) phase at which the observed boundary walk starts.
    Whole-symbol phase shifts are handled by rotating words during
    comparison; *sub-symbol* shifts change the word itself.  Encoding
    the ideal series at every sample offset within one PAA segment
    yields the complete set of words an ideal shape can produce, and
    the qualifier accepts the minimum distance over that set.
    """
    if type(encoder) is SaxEncoder:
        # Template words are pure functions of geometry and encoder
        # parameters; memoise them so per-trial qualifier construction
        # (campaigns build a pipeline per trial) stops re-walking the
        # polygon boundary.
        return list(_template_variants(
            shape, encoder.word_length, encoder.alphabet_size,
            encoder.normalize, n_samples,
        ))
    return _compute_template_words(shape, encoder, n_samples)


def _compute_template_words(
    shape: str, encoder: SaxEncoder, n_samples: int
) -> list[str]:
    if shape == "circle":
        return [encoder.encode(np.ones(n_samples))]
    if shape not in _SIDES:
        raise ValueError(f"unknown shape {shape!r}")
    series = _polygon_series(_SIDES[shape], n_samples)
    samples_per_segment = max(1, n_samples // encoder.word_length)
    seen: list[str] = []
    for offset in range(samples_per_segment):
        word = encoder.encode(np.roll(series, offset))
        if word not in seen:
            seen.append(word)
    return seen


@lru_cache(maxsize=None)
def _template_variants(
    shape: str,
    word_length: int,
    alphabet_size: int,
    normalize: bool,
    n_samples: int,
) -> tuple[str, ...]:
    encoder = SaxEncoder(word_length, alphabet_size, normalize)
    return tuple(_compute_template_words(shape, encoder, n_samples))


def octagon_template_word(encoder: SaxEncoder | None = None) -> str:
    """Template word for the stop-sign octagon."""
    encoder = encoder or SaxEncoder(word_length=32, alphabet_size=8)
    return shape_template_word("octagon", encoder)


@dataclass(frozen=True, kw_only=True)
class QualifierVerdict:
    """Outcome of one qualifier evaluation.

    Construction is keyword-only so call sites read as statements of
    intent (``QualifierVerdict(matches=False, reliable=False)``)
    rather than positional puzzles; the defaults describe the null
    verdict "nothing matched, but the dependable path itself worked".
    :meth:`unavailable` names the one other state that call sites
    build by hand.

    Attributes
    ----------
    matches:
        True when the observed shape matches the template within the
        threshold.
    distance:
        Rotation-minimised MINDIST between observed and template
        words (the bounded surrogate output).
    word:
        The observed SAX word, kept for explainability ("fully
        explainable, for instance during a safety certification
        process").
    reliable:
        True when the redundant qualifier executions agreed; a False
        here means the qualifier itself detected an execution fault
        and the verdict must be treated as unavailable.
    """

    matches: bool = False
    distance: float = float("inf")
    word: str = ""
    reliable: bool = True

    def __bool__(self) -> bool:
        return self.matches and self.reliable

    @classmethod
    def unavailable(cls) -> QualifierVerdict:
        """The dependable path itself failed: no verdict is available.

        The hybrid must treat the safety class as unconfirmed (see
        :class:`repro.core.hybrid.Decision.QUALIFIER_UNAVAILABLE`).
        """
        return cls(matches=False, distance=float("inf"), word="",
                   reliable=False)


class ShapeQualifier:
    """Deterministic, reliably-executed shape confirmation.

    Parameters
    ----------
    shape:
        Target shape name (default ``"octagon"`` for "Stop").
    word_length, alphabet_size:
        SAX parameters; defaults (32, 8) put four PAA segments on each
        octagon corner period, which keeps the scallop amplitude
        visible at every sampling phase (two segments per period can
        alias the signature flat).
    threshold:
        Accept when the rotation-minimised MINDIST is at or below
        this.  The default separates octagons from circles and
        triangles with margin on the synthetic data (see the
        calibration test in ``tests/core/test_qualifier.py``).
    redundant:
        Execute the pipeline twice and require agreement (default
        True; set False only for baseline measurements).
    edge_threshold:
        Optional fixed edge-map threshold forwarded to
        :func:`repro.vision.edges.edge_map`.
    engine:
        Batched-qualification strategy for :meth:`check_batch` /
        :meth:`check_feature_map_batch` (one of
        :data:`QUALIFIER_ENGINES`).  ``"auto"`` (default) runs the
        vectorized engine of :mod:`repro.core.qualifier_batch` exactly
        when its verdicts are provably bitwise identical to per-image
        scalar calls, and the scalar loop otherwise -- the same policy
        :class:`~repro.reliable.executor.ReliableConv2D` applies to
        its arithmetic engines.  Single-image :meth:`check` is always
        the scalar pipeline.
    """

    def __init__(
        self,
        shape: str = "octagon",
        word_length: int = 32,
        alphabet_size: int = 8,
        threshold: float = 3.0,
        redundant: bool = True,
        edge_threshold: float | None = None,
        n_samples: int = SERIES_SAMPLES,
        engine: str = "auto",
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if engine not in QUALIFIER_ENGINES:
            raise ValueError(
                f"unknown qualifier engine {engine!r}; "
                f"choose one of {QUALIFIER_ENGINES}"
            )
        self.shape = shape
        self.encoder = SaxEncoder(word_length, alphabet_size)
        self.threshold = threshold
        self.redundant = redundant
        self.edge_threshold = edge_threshold
        self.n_samples = n_samples
        self.engine = engine
        self.templates = shape_template_words(
            shape, self.encoder, n_samples
        )
        # (templates, rotations, w) index tensor: every cyclic
        # rotation of every template variant, precomputed so distance
        # evaluation -- scalar or batched -- is one table lookup and
        # one contiguous reduction instead of a Python rotation loop.
        self._template_rotations = np.stack([
            rotation_index_tensor(word, self.encoder.alphabet_size)
            for word in self.templates
        ])

    # -- pipeline stages -------------------------------------------------
    def signature(self, image: np.ndarray) -> np.ndarray:
        """Centroid-distance series of the dominant shape in ``image``."""
        mask = edge_map(image, threshold=self.edge_threshold)
        contour = largest_contour(mask)
        return centroid_distance_series(contour, n_samples=self.n_samples)

    def word(self, image: np.ndarray) -> str:
        """Observed SAX word for ``image``."""
        return self.encoder.encode(self.signature(image))

    def _evaluate_once(self, image: np.ndarray) -> tuple[bool, float, str]:
        try:
            word = self.word(image)
        except ValueError:
            # No contour found: definitively not the shape.
            return False, float("inf"), ""
        distance = self._distance(word)
        return distance <= self.threshold, distance, word

    def _distance(self, word: str) -> float:
        """Min rotation-invariant MINDIST over all template variants.

        One pass over the precomputed rotation tensor; bitwise equal
        to the historical per-template/per-rotation loop (each
        candidate's squared-gap sum reduces the same contiguous ``w``
        gaps, and the minimum of identical floats is order-free).
        """
        symbols = word_indices(word, self.encoder.alphabet_size)
        profile = mindist_profile(
            symbols, self._template_rotations,
            self.encoder.alphabet_size, self.n_samples,
        )
        return float(profile.min())

    def _distance_symbols(self, symbols: np.ndarray) -> np.ndarray:
        """Batched :meth:`_distance` over ``(k, w)`` observed symbol
        rows; returns the ``(k,)`` minimised distances."""
        profile = mindist_profile(
            symbols[:, None, None, :], self._template_rotations[None],
            self.encoder.alphabet_size, self.n_samples,
        )
        return profile.min(axis=(1, 2))

    # -- public API ---------------------------------------------------------
    def check(self, image: np.ndarray) -> QualifierVerdict:
        """Evaluate the qualifier, redundantly when configured.

        With ``redundant=True`` the full pipeline is executed twice
        inside a :class:`CheckpointedSegment`; disagreement rolls back
        once, persistent disagreement yields an *unreliable* verdict
        (never an exception -- the hybrid must keep operating and
        treat the safety class as unconfirmed).
        """
        if not self.redundant:
            matches, distance, word = self._evaluate_once(image)
            return QualifierVerdict(matches=matches, distance=distance,
                                word=word)

        def compute() -> tuple[bool, float, str]:
            return self._evaluate_once(image)

        def validate(result: tuple[bool, float, str]) -> bool:
            return result == self._evaluate_once(image)

        segment = CheckpointedSegment(
            compute, validate, RollbackPolicy(max_rollbacks=1),
            name=f"qualifier[{self.shape}]",
        )
        try:
            matches, distance, word = segment.run()
        except Exception:
            return QualifierVerdict.unavailable()
        return QualifierVerdict(matches=matches, distance=distance,
                                word=word)

    def check_feature_map(self, feature_map: np.ndarray) -> QualifierVerdict:
        """Qualifier over already-computed (reliable) edge responses.

        Used by the integrated hybrid (Figure 2): the bifurcated DCNN
        output is already an edge response, so the pipeline starts at
        thresholding rather than recomputing gradients.

        ``feature_map`` is either one ``(h, w)`` map (absolute
        response used directly) or a stack ``(2, h, w)`` of
        directional responses -- typically the Sobel-x and Sobel-y
        pinned filters -- combined into a gradient magnitude.  The
        two-map form is strongly preferred: a single directional
        filter response has gaps where the shape outline runs
        parallel to the filter direction.
        """
        feature_map = np.asarray(feature_map, dtype=np.float32)
        if feature_map.ndim == 3:
            if feature_map.shape[0] == 1:
                feature_map = np.abs(feature_map[0])
            elif feature_map.shape[0] == 2:
                feature_map = np.hypot(feature_map[0], feature_map[1])
            else:
                raise ValueError(
                    "expected (h, w), (1, h, w) or (2, h, w), got "
                    f"{feature_map.shape}"
                )
        else:
            feature_map = np.abs(feature_map)
        peak = float(feature_map.max())
        if peak <= 0.0:
            return QualifierVerdict()
        # Dilation reconnects ridge fragments that strided sampling
        # split; without it the largest component can be a tiny arc.
        mask = binary_dilate(feature_map >= 0.5 * peak)

        def evaluate() -> tuple[bool, float, str]:
            try:
                contour = largest_contour(mask)
                series = centroid_distance_series(
                    contour, n_samples=self.n_samples
                )
                word = self.encoder.encode(series)
            except ValueError:
                return False, float("inf"), ""
            distance = self._distance(word)
            return distance <= self.threshold, distance, word

        if not self.redundant:
            matches, distance, word = evaluate()
            return QualifierVerdict(matches=matches, distance=distance,
                                word=word)
        segment = CheckpointedSegment(
            evaluate, lambda r: r == evaluate(),
            RollbackPolicy(max_rollbacks=1),
            name=f"qualifier-fm[{self.shape}]",
        )
        try:
            matches, distance, word = segment.run()
        except Exception:
            return QualifierVerdict.unavailable()
        return QualifierVerdict(matches=matches, distance=distance,
                                word=word)

    # -- batched API ------------------------------------------------------
    def _use_batched_engine(self) -> bool:
        if self.engine == "scalar":
            return False
        if self.engine == "batched":
            return True
        from repro.core.qualifier_batch import batched_is_exact

        return batched_is_exact(self)

    def check_batch(self, images: np.ndarray) -> list[QualifierVerdict]:
        """Evaluate the qualifier over a stack of images.

        ``images`` is ``(n, c, h, w)`` or ``(n, h, w)`` -- axis 0 is
        always the batch.  Returns one :class:`QualifierVerdict` per
        image, equal to ``[self.check(img) for img in images]``:
        bitwise so under the batched engine (see
        :mod:`repro.core.qualifier_batch` for the contract, including
        the redundant-disagreement rollback), trivially so under the
        scalar engine.
        """
        images = np.asarray(images, dtype=np.float32)
        if images.ndim not in (3, 4):
            raise ValueError(
                f"expected (n, c, h, w) or (n, h, w), got {images.shape}"
            )
        if len(images) == 0:
            return []
        if self._use_batched_engine():
            from repro.core.qualifier_batch import batched_check

            return batched_check(self, images)
        return [self.check(image) for image in images]

    def check_feature_map_batch(
        self, feature_maps: np.ndarray
    ) -> list[QualifierVerdict]:
        """Batched :meth:`check_feature_map` over stacked reliable
        feature maps (``(n, h, w)``, ``(n, 1, h, w)`` or
        ``(n, 2, h, w)``), with the same per-image equality guarantee
        as :meth:`check_batch`."""
        feature_maps = np.asarray(feature_maps, dtype=np.float32)
        if feature_maps.ndim not in (3, 4):
            raise ValueError(
                "expected (n, h, w), (n, 1, h, w) or (n, 2, h, w), got "
                f"{feature_maps.shape}"
            )
        if len(feature_maps) == 0:
            return []
        if self._use_batched_engine():
            from repro.core.qualifier_batch import batched_check_feature_map

            return batched_check_feature_map(self, feature_maps)
        return [self.check_feature_map(fm) for fm in feature_maps]

"""Batched qualifier engine: the dependable path, vectorized.

The scalar :meth:`~repro.core.qualifier.ShapeQualifier.check` is
paper-faithful and paper-slow: per-pixel BFS labelling, a Python
rotation loop in MINDIST, and all of it at least twice for temporal
redundancy.  This engine keeps the Figure-3 *semantics* -- edge map ->
largest contour -> centroid-distance series -> SAX word -> bounded
template distance, executed redundantly with rollback -- while moving
the arithmetic into whole-batch array passes, mirroring the
speculate-then-verify design of :mod:`repro.reliable.vectorized`:

1. **Speculate.**  Run the full batched pipeline over ``(n, ...)``
   images in single array passes: batched grayscale/Sobel/threshold
   (:func:`~repro.vision.edges.edge_map_batch`), array-parallel
   connected-component labelling
   (:func:`~repro.vision.contours.label_components_batch`), lockstep
   Moore tracing of every image's largest component
   (:func:`~repro.vision.contours.trace_boundary_batch`),
   length-grouped series extraction
   (:func:`~repro.vision.series.centroid_distance_series_batch`), one
   SAX encoding of the stacked series matrix, and one fancy-indexed
   MINDIST over the precomputed template rotation tensor.
2. **Verify.**  With ``redundant=True`` the whole batched pipeline
   executes twice -- as one doubled-lane pass over ``[batch; batch]``,
   the same way the vectorized reliable conv runs its DMR passes as
   stacked arrays -- and the per-image verdict tuples ``(matches,
   distance, word)`` of the two lanes are compared, the same equality
   the scalar ``CheckpointedSegment`` validator applies.  Every
   batched stage is bitwise per-image-stable with respect to batch
   composition (the property the whole engine is built on), so lane
   ``i`` and lane ``n + i`` compute exactly what two sequential runs
   would.
3. **Repair.**  Only images whose two runs disagree re-execute
   through the existing scalar checkpoint/rollback path
   (:meth:`~repro.core.qualifier.ShapeQualifier.check`), which rolls
   back once and degrades to an *unavailable* verdict on persistent
   disagreement -- never an exception.

Equivalence contract
--------------------
For an unmodified :class:`~repro.core.qualifier.ShapeQualifier` with a
stock :class:`~repro.sax.sax.SaxEncoder` (the condition
:func:`batched_is_exact` checks and the ``"auto"`` engine policy
requires), every stage is bitwise identical to the scalar pipeline per
image: the batched frontend reduces the same contiguous windows
through the same kernels, the array labeller provably reproduces the
BFS component numbering, the lockstep Moore trace replays the scalar
walk's decision rule lane-wise, series extraction groups boundaries by
length so every row reduction walks the scalar summation tree, and the
batched SAX/MINDIST forms reduce the same contiguous rows (see
``tests/core/test_qualifier_batch.py`` and the randomized differential
harness in ``tests/support/fuzz.py``).  Subclassed qualifiers or
encoders may override per-image hooks the batched pipeline would
bypass, so ``"auto"`` falls back to the scalar loop for them;
``engine="batched"`` forces this engine regardless.
"""

from __future__ import annotations

import numpy as np

from repro.core.qualifier import QualifierVerdict, ShapeQualifier
from repro.sax.sax import SaxEncoder, symbols_to_words
from repro.vision.contours import (
    largest_component_batch,
    trace_boundary_batch,
)
from repro.vision.edges import edge_map_batch
from repro.vision.morphology import binary_dilate_batch
from repro.vision.series import centroid_distance_series_batch

#: The "definitively not the shape" outcome of one evaluation: no
#: contour (or a degenerate one), exactly what the scalar path returns
#: when the Figure-3 pipeline finds nothing traceable.
_MISS = (False, float("inf"), "")


def batched_is_exact(qualifier: ShapeQualifier) -> bool:
    """Whether the batched engine is provably bit-identical to n
    scalar ``check()`` calls for this qualifier.

    Exact types only, like the vectorized reliable-conv engine's
    operator check: a subclass may override ``signature``/``word``/
    ``_distance`` (or the encoder's ``symbols``) in ways the batched
    pipeline would silently bypass.
    """
    return (
        type(qualifier) is ShapeQualifier
        and type(qualifier.encoder) is SaxEncoder
    )


def _verdict(result: tuple[bool, float, str]) -> QualifierVerdict:
    matches, distance, word = result
    return QualifierVerdict(matches=matches, distance=distance, word=word)


def _qualify_masks(
    qualifier: ShapeQualifier, masks: np.ndarray
) -> list[tuple[bool, float, str]]:
    """One batched evaluation of edge masks to verdict tuples.

    Mirrors the scalar ``_evaluate_once`` stage for stage: the largest
    component of each mask is Moore-traced, degenerate masks (no
    foreground, or a boundary of fewer than 3 points -- the cases the
    scalar path converts from ``ValueError``) yield the miss tuple,
    and the surviving series are SAX-encoded and template-matched as
    one matrix.
    """
    n = len(masks)
    results: list[tuple[bool, float, str] | None] = [None] * n
    components, found = largest_component_batch(masks)
    boundaries = trace_boundary_batch(components)
    contours: list[np.ndarray] = []
    owners: list[int] = []
    for i in range(n):
        points = boundaries[i]
        if points is None or len(points) < 3:
            # No foreground, or a degenerate boundary -- the cases the
            # scalar path converts from ``ValueError``.
            results[i] = _MISS
            continue
        contours.append(points)
        owners.append(i)
    if owners:
        series_rows = centroid_distance_series_batch(
            contours, n_samples=qualifier.n_samples
        )
        symbols = qualifier.encoder.symbols_batch(series_rows)
        words = symbols_to_words(symbols)
        distances = qualifier._distance_symbols(symbols)
        for row, i in enumerate(owners):
            distance = float(distances[row])
            results[i] = (
                distance <= qualifier.threshold, distance, words[row]
            )
    return results  # type: ignore[return-value]


def _redundant_verdicts(
    first: list[tuple[bool, float, str]],
    second: list[tuple[bool, float, str]],
    fallback,
) -> list[QualifierVerdict]:
    """Verify two batched runs; repair disagreements via ``fallback``.

    ``fallback(i)`` must run image ``i`` through the scalar
    checkpoint/rollback path and return its verdict (rollback once,
    persistent disagreement -> unavailable, never an exception).
    """
    verdicts = []
    for i, (a, b) in enumerate(zip(first, second)):
        # The scalar validator's comparison: tuple equality over
        # (bool, float, str) -- inf == inf qualifies, and distances
        # are never NaN (gap sums are finite).
        verdicts.append(_verdict(a) if a == b else fallback(i))
    return verdicts


def batched_check(
    qualifier: ShapeQualifier, images: np.ndarray
) -> list[QualifierVerdict]:
    """Batched form of :meth:`ShapeQualifier.check` over ``(n, ...)``
    images; see the module docstring for the scheme and the
    equivalence contract."""
    images = np.asarray(images, dtype=np.float32)
    if not qualifier.redundant:
        masks = edge_map_batch(images, threshold=qualifier.edge_threshold)
        return [_verdict(t) for t in _qualify_masks(qualifier, masks)]
    # Temporal redundancy as one doubled-lane pass: both executions of
    # every image run through the same array instructions, lanes i and
    # n + i, and are compared afterwards.  Per-image bitwise stability
    # of every batched stage guarantees this equals two sequential
    # whole-batch runs.
    n = len(images)
    masks = edge_map_batch(
        np.concatenate([images, images]),
        threshold=qualifier.edge_threshold,
    )
    both = _qualify_masks(qualifier, masks)
    return _redundant_verdicts(
        both[:n], both[n:], lambda i: qualifier.check(images[i])
    )


def batched_check_feature_map(
    qualifier: ShapeQualifier, feature_maps: np.ndarray
) -> list[QualifierVerdict]:
    """Batched form of :meth:`ShapeQualifier.check_feature_map`.

    ``feature_maps`` is ``(n, h, w)``, ``(n, 1, h, w)`` or
    ``(n, 2, h, w)`` -- the batched twins of the scalar layouts.  As
    in the scalar path, the magnitude/threshold/dilation frontend runs
    once per image and only the contour-to-distance stage is executed
    redundantly.
    """
    feature_maps = np.asarray(feature_maps, dtype=np.float32)
    if feature_maps.ndim == 4:
        if feature_maps.shape[1] == 1:
            magnitude = np.abs(feature_maps[:, 0])
        elif feature_maps.shape[1] == 2:
            magnitude = np.hypot(feature_maps[:, 0], feature_maps[:, 1])
        else:
            raise ValueError(
                "expected (n, h, w), (n, 1, h, w) or (n, 2, h, w), got "
                f"{feature_maps.shape}"
            )
    elif feature_maps.ndim == 3:
        magnitude = np.abs(feature_maps)
    else:
        raise ValueError(
            "expected (n, h, w), (n, 1, h, w) or (n, 2, h, w), got "
            f"{feature_maps.shape}"
        )
    peaks = magnitude.max(axis=(1, 2)).astype(np.float64)
    dead = peaks <= 0.0
    masks = binary_dilate_batch(
        magnitude >= (0.5 * peaks)[:, None, None]
    )
    # A non-positive peak short-circuits scalar evaluation entirely
    # (null verdict before any redundancy); blank its mask so the
    # shared qualification pass skips it the same way.
    masks[dead] = False
    if qualifier.redundant:
        # Doubled-lane redundant execution of the contour stage; the
        # magnitude/threshold/dilation frontend runs once per image,
        # exactly as the scalar path computes it outside the segment.
        n = len(masks)
        both = _qualify_masks(
            qualifier, np.concatenate([masks, masks])
        )
        verdicts = _redundant_verdicts(
            both[:n], both[n:],
            lambda i: qualifier.check_feature_map(feature_maps[i]),
        )
    else:
        verdicts = [
            _verdict(t) for t in _qualify_masks(qualifier, masks)
        ]
    for i in np.nonzero(dead)[0]:
        verdicts[i] = QualifierVerdict()
    return verdicts

"""The paper's contribution: hybrid CNNs with a reliability guarantee.

* :mod:`repro.core.qualifier` -- the reliably-executed shape
  qualifier: edge map -> contour -> centroid-distance series -> SAX
  word -> template match, with the qualifier pipeline itself run
  redundantly.
* :mod:`repro.core.partition` -- which parts of the network form the
  dependable CNN (DCNN) and what that costs.
* :mod:`repro.core.hybrid` -- the two architectures: the parallel
  qualifier of Figure 1 and the integrated, bifurcating hybrid of
  Figure 2, combined by the reliable-result block.
* :mod:`repro.core.guarantee` -- the analytic reliability model that
  turns per-operation fault rates and a protection configuration into
  end-to-end detection/SDC probabilities, and the compute cost model
  behind the paper's "conserve both footprint and computational
  power" claim.
"""

from repro.core.qualifier import (
    QUALIFIER_ENGINES,
    QualifierVerdict,
    ShapeQualifier,
    octagon_template_word,
    shape_template_word,
)
from repro.core.qualifier_batch import (
    batched_check,
    batched_check_feature_map,
    batched_is_exact,
)
from repro.core.partition import HybridPartition
from repro.core.hybrid import (
    Decision,
    HybridResult,
    IntegratedHybridCNN,
    ParallelHybridCNN,
    ReliableResultBlock,
)
from repro.core.guarantee import (
    CostModel,
    ReliabilityGuarantee,
    dmr_residual_risk,
    plain_sdc_probability,
    tmr_residual_risk,
)

__all__ = [
    "ShapeQualifier",
    "QualifierVerdict",
    "QUALIFIER_ENGINES",
    "batched_check",
    "batched_check_feature_map",
    "batched_is_exact",
    "shape_template_word",
    "octagon_template_word",
    "HybridPartition",
    "ParallelHybridCNN",
    "IntegratedHybridCNN",
    "ReliableResultBlock",
    "HybridResult",
    "Decision",
    "ReliabilityGuarantee",
    "CostModel",
    "plain_sdc_probability",
    "dmr_residual_risk",
    "tmr_residual_risk",
]

"""Declarative chaos experiments with machine-checked postconditions.

A :class:`ChaosExperiment` drives a :class:`~repro.serving.server.
PipelineServer` (wrapped in a :class:`~repro.chaos.proxy.
ChaosPipelineProxy`) through a planned fault schedule, then asserts
the serving invariants every run must uphold *no matter which faults
fired*:

* **Full accounting** -- ``submitted == completed + failed +
  cancelled`` on the server's own ledger, with rejects counted
  separately, and the ledger agreeing with the driver's view of every
  submission it made.
* **No silent drops or hangs** -- every ``PendingResult`` completes
  (result or explicit error) within the experiment timeout.
* **Backpressure holds exactly** -- each queue-exhaustion burst is
  refused precisely ``burst_overflow`` times, never silently dropped.
* **Degradation routing holds** -- the hook fires once per flagged
  delivery, matching both the driver's count and the ledger.
* **Bitwise serial parity** -- every delivered result is
  bit-for-bit what serial ``infer()`` produces on the same payload
  (including deliberately corrupted payloads).

Violations are collected, not raised: the experiment always returns a
:class:`ChaosReport`, whose outcome uses the campaign vocabulary
(:data:`repro.campaigns.report.OUTCOME_ORDER`) so chaos trials drop
straight into the existing campaign/catalog machinery.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.api.config import ChaosConfig, ServingConfig
from repro.chaos.faults import (
    ChaosError,
    ChaosPlan,
    ChaosTimeout,
    FaultType,
    ServiceFaultInjector,
)
from repro.chaos.proxy import ChaosPipelineProxy
from repro.data.signs import SIGN_CLASSES, render_sign
from repro.serving.server import (
    PipelineServer,
    ServerClosed,
    ServerError,
    ServerOverloaded,
)


def _corrupted(image: np.ndarray, bits) -> np.ndarray:
    """Apply planned storage-bit flips to a float32 copy of ``image``.

    The copy is what gets submitted *and* what the serial parity
    oracle sees, so corruption never breaks parity -- it only tests
    that the server serves hostile payloads exactly like ``infer()``.
    """
    payload = np.ascontiguousarray(image, dtype=np.float32).copy()
    words = payload.view(np.uint32).reshape(-1)
    for word, bit in bits:
        words[word] ^= np.uint32(1) << np.uint32(bit)
    return payload


def _bitwise_equal(served, serial) -> bool:
    """Bit-for-bit equality of two HybridResults (the serving parity
    contract; mirrors tests/serving/test_determinism.py)."""
    if (
        np.asarray(served.probabilities).tobytes()
        != np.asarray(serial.probabilities).tobytes()
    ):
        return False
    if served.predicted_class != serial.predicted_class:
        return False
    if served.decision != serial.decision:
        return False
    sv, lv = served.verdict, serial.verdict
    if (sv is None) != (lv is None):
        return False
    if sv is not None:
        if (
            sv.matches != lv.matches
            or sv.word != lv.word
            or sv.reliable != lv.reliable
            or np.float64(sv.distance).tobytes()
            != np.float64(lv.distance).tobytes()
        ):
            return False
    sr, lr = served.reliable_report, serial.reliable_report
    if (sr is None) != (lr is None):
        return False
    if sr is not None and (
        sr.errors_detected != lr.errors_detected
        or sr.rollbacks != lr.rollbacks
        or sr.persistent_failures != lr.persistent_failures
    ):
        return False
    return True


@dataclass(frozen=True, kw_only=True)
class ChaosReport:
    """What one chaos experiment planned, observed and concluded."""

    plan: ChaosPlan
    #: Invariant name -> held?  (the machine-checked postconditions).
    invariants: dict[str, bool]
    #: Tags for every invariant that failed (empty == healthy run).
    violations: tuple[str, ...]
    #: Campaign outcome label (see OUTCOME_ORDER): clean / masked /
    #: detected_recovered / detected_aborted / silent_corruption.
    outcome: str
    #: Crash-recovery restarts the driver performed.
    restarts: int
    #: Driver-side tallies (timing-dependent; never fingerprinted).
    delivered: int
    failed: int
    cancelled: int
    rejected: int
    refused_closed: int
    parity_checked: int
    elapsed_seconds: float
    #: Final ServerStats snapshot as a dict (timing-dependent).
    stats: dict = field(default_factory=dict)

    @property
    def invariants_hold(self) -> bool:
        return not self.violations

    def deterministic_metrics(self) -> dict[str, float]:
        """The metrics safe to put in a fingerprinted TrialRecord:
        pure functions of the plan, never of thread timing."""
        return self.plan.to_metrics()

    def to_dict(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "invariants": dict(sorted(self.invariants.items())),
            "violations": list(self.violations),
            "outcome": self.outcome,
            "restarts": self.restarts,
            "delivered": self.delivered,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "refused_closed": self.refused_closed,
            "parity_checked": self.parity_checked,
            "elapsed_seconds": self.elapsed_seconds,
            "stats": self.stats,
        }


@dataclass(frozen=True, kw_only=True)
class ChaosExperiment:
    """One declarative serving-chaos scenario.

    Attributes
    ----------
    chaos:
        The fault load (:class:`~repro.api.config.ChaosConfig`).
    serving:
        Server wiring; None uses :meth:`serving_config`'s chaos-ready
        default (``overflow="reject"``, ``max_wait_ms=0`` -- the
        combination queue-exhaustion bursts require for an *exact*
        rejection count).
    n_requests:
        Base traffic volume (excludes burst traffic).  Every third
        request duplicates its predecessor so cache-enabled runs
        exercise hits and in-flight joins under fault fire.
    threads:
        Concurrent submitter threads for base traffic.
    image_size:
        Rendered sign edge length (small = fast trials).
    cache:
        Response-cache mode for the default serving config
        (``"off"`` or ``"lru"``).
    timeout_s:
        Per-handle ``result()`` bound and stop bound; exceeding it is
        the *hung* violation, the one failure mode chaos must never
        let pass silently.
    """

    chaos: ChaosConfig
    serving: ServingConfig | None = None
    n_requests: int = 12
    threads: int = 2
    image_size: int = 20
    cache: str = "off"
    timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("n_requests must be positive")
        if self.threads < 1:
            raise ValueError("threads must be positive")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    def serving_config(self) -> ServingConfig:
        """The server wiring this experiment drives."""
        if self.serving is not None:
            return self.serving
        return ServingConfig(
            max_batch=8,
            max_wait_ms=0.0,
            queue_capacity=max(8, self.n_requests + self.threads + 4),
            overflow="reject",
            cache=self.cache,
        )

    # -- traffic ---------------------------------------------------------
    def _images(self) -> list[np.ndarray]:
        images: list[np.ndarray] = []
        for i in range(self.n_requests):
            if i % 3 == 2:
                # Duplicate the predecessor: cache-hit / join traffic.
                images.append(images[i - 1])
            else:
                images.append(
                    render_sign(
                        i % len(SIGN_CLASSES),
                        size=self.image_size,
                        rotation=0.03 * i,
                    )
                )
        return images

    # -- run -------------------------------------------------------------
    def run(
        self, pipeline, rng: np.random.Generator
    ) -> ChaosReport:
        """Execute the scenario and check every postcondition.

        ``rng`` seeds the fault schedule only; traffic content is
        fixed by the experiment fields, so the whole run is a pure
        function of ``(experiment, pipeline, rng state)``.
        """
        serving = self.serving_config()
        if self.chaos.queue_exhaustion_bursts and (
            serving.overflow != "reject" or serving.max_wait_ms != 0
        ):
            raise ChaosError(
                "queue-exhaustion bursts need overflow='reject' and "
                "max_wait_ms=0 for a deterministic rejection count"
            )
        injector = ServiceFaultInjector(self.chaos, rng)
        images = self._images()
        plan = injector.plan(self.n_requests, int(images[0].size))
        if len(plan.server_events) > self.n_requests:
            raise ChaosError(
                f"{len(plan.server_events)} server-side events need at "
                f"least as many base requests (got {self.n_requests})"
            )
        payloads = list(images)
        for event in plan.corruptions:
            payloads[event.request_index] = _corrupted(
                images[event.request_index], event.bits
            )

        hook_calls = [0]
        hook_lock = threading.Lock()

        def on_degraded(result) -> None:
            with hook_lock:
                hook_calls[0] += 1

        proxy = ChaosPipelineProxy(pipeline, injector)
        server = PipelineServer(proxy, serving, on_degraded=on_degraded)
        violations: list[str] = []
        outcomes: list[tuple[int, object]] = []  # (request index, handle)
        refused_closed = 0
        rejected = 0
        restarts = 0
        started = time.perf_counter()
        server.start()
        pool = ThreadPoolExecutor(max_workers=self.threads)
        try:
            # Base traffic in phases: one armed server-side event per
            # phase, so each fires exactly once (on the phase's first
            # flush) and crash recovery happens at a planned point.
            n_phases = max(1, len(plan.server_events))
            bounds = [
                (
                    p * self.n_requests // n_phases,
                    (p + 1) * self.n_requests // n_phases,
                )
                for p in range(n_phases)
            ]
            for phase, (lo, hi) in enumerate(bounds):
                event = (
                    plan.server_events[phase]
                    if phase < len(plan.server_events)
                    else None
                )
                if event is not None:
                    injector.arm(event)

                def _submit(index: int):
                    # The phase's first request bypasses the cache so
                    # at least one flush happens and the armed event
                    # cannot leak into a later phase.
                    return server.submit(
                        payloads[index], use_cache=index != lo
                    )
                futures = [
                    (i, pool.submit(_submit, i)) for i in range(lo, hi)
                ]
                refused: list[int] = []
                for index, future in futures:
                    try:
                        outcomes.append((index, future.result()))
                    except ServerOverloaded:
                        # Base traffic fits the queue by construction;
                        # a reject here is an accounting violation.
                        rejected += 1
                        violations.append("unplanned_rejection")
                    except ServerClosed:
                        # Raced the phase's crash: refused at the
                        # gate, never accepted -- legal, tracked, and
                        # retried after the recovery restart below.
                        refused_closed += 1
                        refused.append(index)
                # Phase barrier: settle every handle before deciding
                # whether a recovery restart is due.
                self._await_all(outcomes, violations)
                crashed = (
                    event is not None
                    and event.fault is FaultType.BATCHER_CRASH
                )
                if crashed:
                    # Recover at the *planned* point, keyed off the
                    # plan (not the racy ``running`` flag): stop the
                    # dead batcher cleanly, then restart.
                    server.stop(drain=False, timeout=self.timeout_s)
                    server.start()
                    restarts += 1
                elif not server.running:
                    violations.append("unexpected_batcher_death")
                    server.stop(drain=False, timeout=self.timeout_s)
                    server.start()
                    restarts += 1
                if restarts and refused:
                    # Gate-refused submissions were never accepted;
                    # retry them on the restarted server so crash
                    # trials exercise post-recovery serving too.
                    for index in refused:
                        try:
                            outcomes.append(
                                (index, server.submit(payloads[index]))
                            )
                        except (ServerOverloaded, ServerClosed):
                            violations.append("restart_refused_retry")
                    self._await_all(outcomes, violations)

            # Queue-exhaustion bursts: park the batcher mid-flush so
            # the queue fills deterministically, then overfill it by
            # exactly burst_overflow.
            capacity = serving.queue_capacity
            for burst in range(plan.bursts):
                injector.request_stall()
                trigger = server.submit(
                    payloads[burst % self.n_requests], use_cache=False
                )
                if not injector.wait_stalled(self.timeout_s):
                    violations.append("burst_stall_never_reached")
                    injector.release_all()
                    break
                burst_handles: list[tuple[int, object]] = [(-1, trigger)]
                for j in range(capacity + self.chaos.burst_overflow):
                    try:
                        burst_handles.append(
                            (
                                -1,
                                server.submit(
                                    payloads[j % self.n_requests],
                                    use_cache=False,
                                ),
                            )
                        )
                    except ServerOverloaded:
                        rejected += 1
                injector.release_stall()
                self._await_all(burst_handles, violations)
                outcomes.extend(burst_handles)
        finally:
            pool.shutdown(wait=True)
            injector.release_all()
            stop_failed = False
            try:
                server.stop(drain=True, timeout=self.timeout_s)
            except ServerError:
                stop_failed = True
                violations.append("stop_failed")

        # -- postconditions ---------------------------------------------
        delivered = failed = cancelled = 0
        parity_checked = 0
        flagged_delivered = 0
        for index, handle in outcomes:
            kind, result = self._settle(handle)
            if kind == "hung":
                continue  # already tagged by _await_all
            if kind == "failed":
                failed += 1
            elif kind == "cancelled":
                cancelled += 1
            else:
                delivered += 1
                if getattr(result, "flagged", False):
                    flagged_delivered += 1
                if index >= 0:
                    parity_checked += 1
                    if not _bitwise_equal(
                        result, proxy.infer(payloads[index])
                    ):
                        violations.append("parity_mismatch")

        stats = server.stats()
        invariants = {
            "accounting_balances": (
                stats.submitted
                == stats.completed + stats.failed + stats.cancelled
            ),
            "ledger_matches_driver": (
                stats.submitted == len(outcomes)
                and stats.rejected == rejected
            ),
            "no_hung_pending": "hung_pending" not in violations,
            "delivered_parity": "parity_mismatch" not in violations,
            "degradation_routing": (
                hook_calls[0] == flagged_delivered
                and stats.degraded == flagged_delivered
            ),
            "backpressure_exact": rejected == plan.expected_rejections,
            "clean_stop": not stop_failed,
        }
        for name, held in invariants.items():
            if not held and name not in (
                "no_hung_pending",
                "delivered_parity",
                "clean_stop",
            ):
                violations.append(f"violated:{name}")

        outcome = self._classify(plan, violations)
        return ChaosReport(
            plan=plan,
            invariants=invariants,
            violations=tuple(dict.fromkeys(violations)),
            outcome=outcome,
            restarts=restarts,
            delivered=delivered,
            failed=failed,
            cancelled=cancelled,
            rejected=rejected,
            refused_closed=refused_closed,
            parity_checked=parity_checked,
            elapsed_seconds=time.perf_counter() - started,
            stats=stats.to_dict(),
        )

    # -- helpers ---------------------------------------------------------
    def _await_all(self, handles, violations: list[str]) -> None:
        """Settle every handle within the bound; a timeout is the
        hung-pending violation (the invariant chaos exists to catch)."""
        for _, handle in handles:
            try:
                handle.result(timeout=self.timeout_s)
            except TimeoutError:
                violations.append("hung_pending")
            except Exception:
                pass  # explicit failure: accounted in _settle

    @staticmethod
    def _settle(handle) -> tuple[str, object]:
        """Classify a settled handle: delivered / failed (explicit
        demuxed error) / cancelled (stop or crash sweep) / hung."""
        try:
            return "delivered", handle.result(timeout=0)
        except TimeoutError:
            return "hung", None
        except (ServerClosed, ServerError):
            return "cancelled", None
        except Exception:
            return "failed", None

    @staticmethod
    def _classify(plan: ChaosPlan, violations: list[str]) -> str:
        if "hung_pending" in violations or "stop_failed" in violations:
            return "detected_aborted"
        if violations:
            return "silent_corruption"
        if plan.total_events == 0:
            return "clean"
        if plan.disruptive_events == 0:
            return "masked"
        return "detected_recovered"

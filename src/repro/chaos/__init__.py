"""``repro.chaos`` -- service-level chaos engineering for the
serving layer.

The dependable-arithmetic campaigns (:mod:`repro.faults`,
:mod:`repro.campaigns`) stress the paper's *execution* story; this
package stresses the *serving* story the same way: seeded,
deterministic fault injection at the server seams, with every run's
invariants machine-checked as postconditions.  See ``docs/chaos.md``.

Layers:

* :class:`FaultType` / :class:`ServiceFaultInjector` -- the fault
  registry and seeded scheduler (:mod:`repro.chaos.faults`).
* :class:`ChaosPipelineProxy` -- the injecting wrapper a
  :class:`~repro.serving.server.PipelineServer` is pointed at
  (:mod:`repro.chaos.proxy`).
* :class:`ChaosExperiment` / :class:`ChaosReport` -- one declarative
  scenario with invariant postconditions
  (:mod:`repro.chaos.experiment`).
* ``serving_chaos`` campaign target + :func:`chaos_campaign_spec` /
  :func:`chaos_summary` -- chaos at campaign scale through the
  existing engine (:mod:`repro.chaos.campaign`).
"""

from repro.chaos.faults import (
    ABSORBABLE_FAULTS,
    CLIENT_SIDE_FAULTS,
    SERVER_SIDE_FAULTS,
    ChaosError,
    ChaosPlan,
    ChaosTimeout,
    FaultEvent,
    FaultType,
    ServiceFaultInjector,
)
from repro.chaos.proxy import ChaosPipelineProxy
from repro.chaos.experiment import ChaosExperiment, ChaosReport
from repro.chaos.campaign import (
    PRESETS,
    chaos_campaign_spec,
    chaos_summary,
    run_serving_chaos_trial,
)

__all__ = [
    "FaultType",
    "FaultEvent",
    "ChaosPlan",
    "ChaosError",
    "ChaosTimeout",
    "ServiceFaultInjector",
    "SERVER_SIDE_FAULTS",
    "CLIENT_SIDE_FAULTS",
    "ABSORBABLE_FAULTS",
    "ChaosPipelineProxy",
    "ChaosExperiment",
    "ChaosReport",
    "PRESETS",
    "run_serving_chaos_trial",
    "chaos_campaign_spec",
    "chaos_summary",
]

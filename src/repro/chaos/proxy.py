"""Fault-injecting pipeline proxy -- the chaos layer's server seam.

The :class:`~repro.serving.server.PipelineServer` never learns it is
under test: it is handed a :class:`ChaosPipelineProxy` instead of the
real :class:`~repro.api.pipeline.HybridPipeline`, and every
micro-batch flush first passes through the injector's
:meth:`~repro.chaos.faults.ServiceFaultInjector.on_flush` firing
point.  The serial ``infer`` path is deliberately left untouched: it
is the parity oracle the experiment compares delivered results
against, so it must stay fault-free.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.faults import ServiceFaultInjector


class ChaosPipelineProxy:
    """Wraps a pipeline so each ``infer_batch`` flush fires at most
    one armed fault before delegating.

    Duck-typed against the surface the server actually uses:
    ``infer_batch`` (the flush path), ``infer`` (the parity oracle --
    never faulted) and ``config`` (response-cache content hashing).
    Delegation preserves the wrapped pipeline's bitwise determinism:
    an absorbed fault (latency spike) changes timing only, never
    results -- pinned by ``tests/chaos/test_determinism.py``.
    """

    def __init__(self, pipeline, injector: ServiceFaultInjector) -> None:
        self.pipeline = pipeline
        self.injector = injector

    @property
    def config(self):
        """The wrapped pipeline's config (cache keying, introspection)."""
        return getattr(self.pipeline, "config", None)

    def infer(
        self,
        image: np.ndarray,
        qualifier_view: np.ndarray | None = None,
    ):
        """Serial oracle path: delegates with no injection."""
        if qualifier_view is not None:
            return self.pipeline.infer(image, qualifier_view=qualifier_view)
        return self.pipeline.infer(image)

    def infer_batch(
        self,
        images: np.ndarray,
        qualifier_views: np.ndarray | None = None,
    ):
        """Flush path: fire at most one armed fault, then delegate.

        ``on_flush`` may sleep (LATENCY_SPIKE), raise
        :class:`~repro.chaos.faults.ChaosTimeout` (TIMEOUT -- demuxed
        by the server as a per-request failure) or raise
        :class:`~repro.serving.server.BatcherCrash` (BATCHER_CRASH --
        escapes to the serve loop's death handler).
        """
        self.injector.on_flush()
        if qualifier_views is not None:
            return self.pipeline.infer_batch(
                images, qualifier_views=qualifier_views
            )
        return self.pipeline.infer_batch(images)

"""The ``serving_chaos`` campaign target and its helpers.

Chaos runs ride the existing campaign engine
(:func:`repro.campaigns.engine.run_campaign`) unchanged: a
:class:`~repro.campaigns.spec.CampaignSpec` with
``target="serving_chaos"`` grids over fault presets (or raw
:class:`~repro.api.config.ChaosConfig` fields), each trial runs one
:class:`~repro.chaos.experiment.ChaosExperiment` on its own spawned
random stream, and the resulting
:class:`~repro.campaigns.report.TrialRecord` is a pure function of
``(spec, cell, trial)`` -- so chaos campaigns inherit seeding,
sharding, resume, multiprocessing with bitwise worker-count
invariance, :class:`~repro.campaigns.store.CampaignStore` artifacts
and catalog ingestion for free.
"""

from __future__ import annotations

from typing import Any

from repro.api.config import ChaosConfig
from repro.campaigns.report import OUTCOME_ORDER, CampaignReport, TrialRecord
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.targets import TrialContext
from repro.chaos.experiment import ChaosExperiment

#: Named fault loads a campaign grid can sweep with one string axis
#: (``chaos_fault``).  ``storm`` combines every fault type; ``none``
#: is the control cell that must come back ``clean``.
PRESETS: dict[str, dict[str, int]] = {
    "none": {},
    "latency_spike": {"latency_spikes": 2},
    "timeout": {"timeouts": 2},
    "batcher_crash": {"batcher_crashes": 1},
    "queue_exhaustion": {"queue_exhaustion_bursts": 1},
    "payload_corruption": {"corrupt_payloads": 3},
    "storm": {
        "latency_spikes": 1,
        "timeouts": 1,
        "batcher_crashes": 1,
        "queue_exhaustion_bursts": 1,
        "corrupt_payloads": 2,
    },
}

#: ChaosConfig fields a cell may override directly (wins over preset).
_CHAOS_FIELDS = (
    "latency_spikes",
    "latency_ms",
    "timeouts",
    "batcher_crashes",
    "queue_exhaustion_bursts",
    "burst_overflow",
    "corrupt_payloads",
    "corrupt_bits",
    "stall_timeout_s",
)

#: Per-process pipeline cache: workers build the (deterministic)
#: model + pipeline once per configuration, like the ``pipeline``
#: target's ``_MODEL_CACHE``.
_PIPELINE_CACHE: dict[tuple, Any] = {}


def _pipeline_for(architecture: str, image_size: int):
    from repro.api import PipelineConfig, QualifierConfig, build_pipeline
    from repro.models.smallcnn import small_cnn

    key = (architecture, image_size)
    if key not in _PIPELINE_CACHE:
        model = small_cnn(n_classes=8, input_size=image_size)
        config = PipelineConfig(
            architecture=architecture,
            qualifier=QualifierConfig(redundant=True),
            pin_sobel=architecture == "integrated",
            name=f"chaos-{architecture}",
        )
        _PIPELINE_CACHE[key] = build_pipeline(config, model)
    return _PIPELINE_CACHE[key]


def chaos_config_for(ctx: TrialContext) -> ChaosConfig:
    """Resolve a cell's chaos load: preset layered under any direct
    ChaosConfig-field overrides."""
    preset = ctx.param("chaos_fault", "storm")
    if preset not in PRESETS:
        raise ValueError(
            f"unknown chaos_fault preset {preset!r}; "
            f"choose one of {sorted(PRESETS)}"
        )
    fields: dict[str, Any] = dict(PRESETS[preset])
    for name in _CHAOS_FIELDS:
        value = ctx.param(name, None)
        if value is not None:
            fields[name] = value
    return ChaosConfig(**fields)


def run_serving_chaos_trial(ctx: TrialContext) -> TrialRecord:
    """One seeded chaos experiment against a live PipelineServer.

    Every record field is deterministic given ``(spec, cell, trial)``:
    outcome/violations derive from the planned schedule and the
    invariant checks (which hold or fail reproducibly), and metrics
    expose only the plan -- never wall-clock tallies -- so campaign
    fingerprints stay worker-count invariant.
    """
    experiment = ChaosExperiment(
        chaos=chaos_config_for(ctx),
        n_requests=ctx.param("n_requests", 10),
        threads=ctx.param("threads", 2),
        image_size=ctx.param("image_size", 20),
        cache=ctx.param("cache", "off"),
        timeout_s=ctx.param("timeout_s", 30.0),
    )
    pipeline = _pipeline_for(
        ctx.param("architecture", "parallel"), experiment.image_size
    )
    report = experiment.run(pipeline, ctx.rng)
    observed = (
        "held" if report.invariants_hold
        else ",".join(report.violations)
    )
    return TrialRecord(
        cell=ctx.cell.index,
        trial=ctx.trial,
        outcome=report.outcome,
        expected="invariants_hold",
        observed=observed,
        faults_fired=report.plan.total_events,
        errors_detected=report.plan.disruptive_events,
        rollbacks=report.restarts,
        aborted=report.outcome == "detected_aborted",
        metrics=report.deterministic_metrics(),
    )


def chaos_campaign_spec(
    *,
    name: str = "serving-chaos",
    faults: tuple[str, ...] = tuple(sorted(PRESETS)),
    trials: int = 2,
    seed: int = 0,
    n_requests: int = 10,
    architecture: str = "parallel",
    cache: str = "off",
    shard_size: int = 4,
) -> CampaignSpec:
    """A ready-to-run chaos campaign: one grid cell per fault preset.

    The spec's ``fault`` field keeps the engine's default FaultSpec --
    the chaos target draws its schedule from the trial stream and
    ``chaos_fault`` params instead, never from ``ctx.build_fault()``.
    """
    return CampaignSpec(
        name=name,
        target="serving_chaos",
        trials=trials,
        seed=seed,
        grid={"chaos_fault": tuple(faults)},
        target_params={
            "n_requests": n_requests,
            "architecture": architecture,
            "cache": cache,
        },
        shard_size=shard_size,
    )


def chaos_summary(report: CampaignReport) -> dict:
    """The catalog-facing summary of a chaos campaign run.

    Distinct shape from a raw campaign report (``chaos_campaign`` key,
    no ``cells``) so :func:`repro.catalog.store.classify_payload` can
    route it to the ``"chaos"`` artifact kind.
    """
    counts = dict(report.counts)
    bad = counts.get("silent_corruption", 0) + counts.get(
        "detected_aborted", 0
    )
    return {
        "chaos_campaign": report.spec_name,
        "target": report.target,
        "spec_hash": report.spec_hash,
        "trials": report.trials,
        "invariants_held_trials": report.trials - bad,
        "outcomes": {label: counts.get(label, 0) for label in OUTCOME_ORDER},
        "fingerprint": report.fingerprint(),
    }

"""Service-fault vocabulary and the seeded fault injector.

The unit-level campaigns (:mod:`repro.faults`) flip bits inside
arithmetic; this module injects the failure modes that live a level
up, at the serving seams: latency spikes, timeouts and crashes inside
the batcher's ``infer_batch`` flush, queue exhaustion and corrupted
payloads at ``submit``.  Following the ``FaultInjector`` /
``FaultType`` design of the aumai-chaos reference, faults are a small
closed registry of types plus a scheduler -- but with this repo's
determinism discipline layered on: the *entire* fault schedule (a
:class:`ChaosPlan`) is drawn up-front from one explicit
``numpy`` Generator, so a trial's planned fault load -- and therefore
its campaign record -- is a pure function of ``(seed, cell, trial)``
no matter how server threads interleave at run time.

Two seams, two firing models:

* **Pipeline seam** (:class:`~repro.chaos.proxy.ChaosPipelineProxy`):
  armed events fire exactly once each, one per ``infer_batch`` flush,
  in plan order.  LATENCY_SPIKE sleeps, TIMEOUT raises
  :class:`ChaosTimeout`, BATCHER_CRASH raises
  :class:`~repro.serving.server.BatcherCrash` (the serve loop's death
  path).
* **Traffic seam** (the experiment driver): PAYLOAD_CORRUPTION flips
  storage bits in a request's image *before* submission;
  QUEUE_EXHAUSTION stalls the batcher mid-flush (a bounded gate) and
  deterministically overfills the bounded queue.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.api.config import ChaosConfig
from repro.serving.server import BatcherCrash


class FaultType(str, enum.Enum):
    """The built-in service-level fault registry."""

    #: A flush takes abnormally long (GC pause, noisy neighbour).
    #: Absorbable: results are unaffected, only latency moves.
    LATENCY_SPIKE = "latency_spike"
    #: A flush's downstream dependency hangs and surfaces as an
    #: explicit timeout error; every request in the flush group
    #: completes with :class:`ChaosTimeout`.
    TIMEOUT = "timeout"
    #: The batcher thread dies mid-flush
    #: (:class:`~repro.serving.server.BatcherCrash`); the server must
    #: fail everything in flight with full accounting and survive a
    #: restart.
    BATCHER_CRASH = "batcher_crash"
    #: Traffic overfills the bounded queue; backpressure must refuse
    #: the overflow explicitly (never silently drop or hang it).
    QUEUE_EXHAUSTION = "queue_exhaustion"
    #: A request arrives with corrupted image storage bits; the server
    #: must serve the corrupted payload bit-for-bit like serial
    #: ``infer()`` would.
    PAYLOAD_CORRUPTION = "payload_corruption"


#: Fault types fired at the pipeline seam, one per flush.
SERVER_SIDE_FAULTS: tuple[FaultType, ...] = (
    FaultType.LATENCY_SPIKE,
    FaultType.TIMEOUT,
    FaultType.BATCHER_CRASH,
)

#: Fault types applied at the traffic seam around ``submit``.
CLIENT_SIDE_FAULTS: tuple[FaultType, ...] = (
    FaultType.QUEUE_EXHAUSTION,
    FaultType.PAYLOAD_CORRUPTION,
)

#: Faults the serving layer absorbs without failing any request:
#: every submission still delivers a result with bitwise serial
#: parity.  The rest must surface as *explicit* errors or rejections.
ABSORBABLE_FAULTS: frozenset[FaultType] = frozenset(
    {FaultType.LATENCY_SPIKE, FaultType.PAYLOAD_CORRUPTION}
)


class ChaosError(RuntimeError):
    """Chaos-layer misuse or a broken experiment precondition."""


class ChaosTimeout(ChaosError):
    """The injected flush timeout (what requests in the faulted flush
    group fail with)."""


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault occurrence.

    ``request_index`` anchors client-side events to a request in the
    experiment's traffic schedule; server-side events leave it None
    (they fire positionally, one per flush).  ``bits`` lists
    ``(flat_word_index, bit)`` storage-bit flips for
    PAYLOAD_CORRUPTION.
    """

    fault: FaultType
    request_index: int | None = None
    delay_s: float = 0.0
    bits: tuple[tuple[int, int], ...] = ()

    def to_dict(self) -> dict:
        return {
            "fault": self.fault.value,
            "request_index": self.request_index,
            "delay_s": self.delay_s,
            "bits": [list(pair) for pair in self.bits],
        }


@dataclass(frozen=True)
class ChaosPlan:
    """The complete, deterministic fault schedule for one experiment.

    A pure function of ``(ChaosConfig, rng state, n_requests,
    payload_words)``: everything a trial record fingerprints comes
    from here, never from run-time thread timing.
    """

    n_requests: int
    server_events: tuple[FaultEvent, ...]
    corruptions: tuple[FaultEvent, ...]
    bursts: int
    #: Exact rejections each burst must produce (``burst_overflow``
    #: submissions past a queue deterministically held at capacity).
    expected_rejections: int
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    @property
    def disruptive_events(self) -> int:
        return sum(
            count
            for fault, count in self.counts.items()
            if FaultType(fault) not in ABSORBABLE_FAULTS
        )

    def to_metrics(self) -> dict[str, float]:
        """Deterministic numeric view for campaign trial records."""
        metrics = {
            f"planned_{fault}": float(count)
            for fault, count in sorted(self.counts.items())
        }
        metrics["n_requests"] = float(self.n_requests)
        metrics["expected_rejections"] = float(self.expected_rejections)
        return metrics

    def to_dict(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "server_events": [e.to_dict() for e in self.server_events],
            "corruptions": [e.to_dict() for e in self.corruptions],
            "bursts": self.bursts,
            "expected_rejections": self.expected_rejections,
            "counts": dict(sorted(self.counts.items())),
        }


class ServiceFaultInjector:
    """Seeded scheduler and runtime firing point for service faults.

    :meth:`plan` consumes the injector's explicit random stream once
    to draw the full schedule; at run time the driver :meth:`arm`\\ s
    server-side events and the pipeline proxy calls :meth:`on_flush`
    from the batcher thread, firing armed events in order, exactly
    once each.  The stall gate (queue-exhaustion bursts) is bounded by
    ``config.stall_timeout_s`` so an orphaned experiment can never
    park a batcher forever.
    """

    #: Thread-safety contract (LOCK-GUARD): the armed queue and stall
    #: flag are touched from driver threads and the batcher thread.
    _guarded_by = {"_lock": ("_stall_pending",)}

    def __init__(
        self, config: ChaosConfig, rng: np.random.Generator
    ) -> None:
        if rng is None:
            raise ChaosError(
                "ServiceFaultInjector requires an explicit Generator; "
                "chaos schedules are campaign-seeded, never ambient"
            )
        self.config = config
        self._rng = rng
        self._lock = threading.Lock()
        self._armed: deque[FaultEvent] = deque()
        self._stall_pending = False
        self._stalled = threading.Event()
        self._release = threading.Event()

    # -- planning --------------------------------------------------------
    def plan(self, n_requests: int, payload_words: int) -> ChaosPlan:
        """Draw the full fault schedule for ``n_requests`` requests of
        ``payload_words`` float32 storage words each.

        Consumes the injector's stream; call once per experiment.
        """
        if n_requests < 1:
            raise ChaosError("plan needs at least one request")
        if payload_words < 1:
            raise ChaosError("payload_words must be positive")
        cfg = self.config
        rng = self._rng
        events: list[FaultEvent] = []
        for _ in range(cfg.latency_spikes):
            # Spike magnitude jitters around the nominal value so a
            # multi-spike plan exercises distinct delays.
            events.append(
                FaultEvent(
                    FaultType.LATENCY_SPIKE,
                    delay_s=cfg.latency_ms * 1e-3 * (0.5 + rng.random()),
                )
            )
        events.extend(
            FaultEvent(FaultType.TIMEOUT) for _ in range(cfg.timeouts)
        )
        events.extend(
            FaultEvent(FaultType.BATCHER_CRASH)
            for _ in range(cfg.batcher_crashes)
        )
        if len(events) > 1:
            order = rng.permutation(len(events))
            events = [events[i] for i in order]

        corruptions: list[FaultEvent] = []
        n_corrupt = min(cfg.corrupt_payloads, n_requests)
        if n_corrupt:
            indices = sorted(
                int(i)
                for i in rng.choice(
                    n_requests, size=n_corrupt, replace=False
                )
            )
            for index in indices:
                words = rng.integers(0, payload_words, size=cfg.corrupt_bits)
                bits = rng.integers(0, 32, size=cfg.corrupt_bits)
                corruptions.append(
                    FaultEvent(
                        FaultType.PAYLOAD_CORRUPTION,
                        request_index=index,
                        bits=tuple(
                            (int(w), int(b)) for w, b in zip(words, bits)
                        ),
                    )
                )

        counts = {
            FaultType.LATENCY_SPIKE.value: cfg.latency_spikes,
            FaultType.TIMEOUT.value: cfg.timeouts,
            FaultType.BATCHER_CRASH.value: cfg.batcher_crashes,
            FaultType.QUEUE_EXHAUSTION.value: cfg.queue_exhaustion_bursts,
            FaultType.PAYLOAD_CORRUPTION.value: n_corrupt,
        }
        return ChaosPlan(
            n_requests=n_requests,
            server_events=tuple(events),
            corruptions=tuple(corruptions),
            bursts=cfg.queue_exhaustion_bursts,
            expected_rejections=(
                cfg.queue_exhaustion_bursts * cfg.burst_overflow
            ),
            counts=counts,
        )

    # -- pipeline-seam firing (batcher thread) ---------------------------
    def arm(self, event: FaultEvent) -> None:
        """Queue one server-side event; the next flush fires it."""
        if event.fault not in SERVER_SIDE_FAULTS:
            raise ChaosError(
                f"{event.fault.value} is a traffic-seam fault; only "
                "latency_spike/timeout/batcher_crash can be armed"
            )
        with self._lock:
            self._armed.append(event)

    def armed_count(self) -> int:
        with self._lock:
            return len(self._armed)

    def on_flush(self) -> None:
        """The pipeline proxy's hook: serve a pending stall, then fire
        at most one armed event.  Raises for TIMEOUT/BATCHER_CRASH."""
        self._serve_stall()
        with self._lock:
            event = self._armed.popleft() if self._armed else None
        if event is None:
            return
        if event.fault is FaultType.LATENCY_SPIKE:
            time.sleep(event.delay_s)
        elif event.fault is FaultType.TIMEOUT:
            raise ChaosTimeout(
                "injected flush timeout (chaos TIMEOUT fault)"
            )
        elif event.fault is FaultType.BATCHER_CRASH:
            raise BatcherCrash("injected batcher crash (chaos fault)")

    # -- stall gate (queue-exhaustion bursts) ----------------------------
    def request_stall(self) -> None:
        """Arm the stall: the *next* flush parks (bounded) until
        :meth:`release_stall`, signalling :meth:`wait_stalled`."""
        self._stalled.clear()
        self._release.clear()
        with self._lock:
            self._stall_pending = True

    def _serve_stall(self) -> None:
        with self._lock:
            pending = self._stall_pending
            self._stall_pending = False
        if pending:
            self._stalled.set()
            # Bounded: a driver that dies mid-burst cannot park the
            # batcher forever.
            self._release.wait(self.config.stall_timeout_s)

    def wait_stalled(self, timeout: float) -> bool:
        """Block until a flush is parked on the stall gate."""
        return self._stalled.wait(timeout)

    def release_stall(self) -> None:
        self._release.set()

    def release_all(self) -> None:
        """Open every gate (experiment teardown safety net)."""
        with self._lock:
            self._stall_pending = False
        self._release.set()

"""The sharded campaign executor.

:func:`run_campaign` turns a :class:`~repro.campaigns.spec.CampaignSpec`
into a :class:`~repro.campaigns.report.CampaignReport`:

1. the trial space (``cells x trials``) is cut into deterministic
   :class:`Shard`\\ s of ``spec.shard_size`` trials;
2. shards already present in the artifact store are loaded, the rest
   execute -- serially, or on a ``multiprocessing`` pool when
   ``workers > 1`` -- with completed shards streamed into the store
   and the progress callback as they finish;
3. per-shard records merge into the report **in shard-index order**,
   so floating-point metric sums (and everything else) are bitwise
   identical whatever the worker count or completion order.

Each trial draws its random stream from
``(spec.seed, cell, trial)`` alone (:mod:`repro.campaigns.seeding`),
which is what makes step 3's guarantee possible: a shard's records do
not depend on which worker ran it or what ran before it.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.api.registry import CAMPAIGN_TARGETS
from repro.campaigns.artifacts import CampaignStore
from repro.campaigns.report import CampaignReport, CellReport, TrialRecord
from repro.campaigns.seeding import trial_rng
from repro.campaigns.spec import CampaignSpec

# Importing the targets module seeds CAMPAIGN_TARGETS with the
# built-in runners; TrialContext is the per-trial handle they consume.
from repro.campaigns.targets import TrialContext


@dataclass(frozen=True)
class Shard:
    """A contiguous run of trials within one grid cell."""

    index: int
    cell: int
    start: int
    count: int

    def to_tuple(self) -> tuple[int, int, int, int]:
        return (self.index, self.cell, self.start, self.count)


def iter_shards(spec: CampaignSpec) -> list[Shard]:
    """Deterministic shard enumeration: cell-major, then trial range."""
    shards = []
    index = 0
    for cell in range(spec.n_cells):
        for start in range(0, spec.trials, spec.shard_size):
            count = min(spec.shard_size, spec.trials - start)
            shards.append(
                Shard(index=index, cell=cell, start=start, count=count)
            )
            index += 1
    return shards


def run_shard(
    spec: CampaignSpec,
    shard: Shard,
    fault_factory: Callable | None = None,
) -> list[TrialRecord]:
    """Execute one shard's trials in order."""
    runner = CAMPAIGN_TARGETS.get(spec.target)
    cell = spec.cells()[shard.cell]
    records = []
    for trial in range(shard.start, shard.start + shard.count):
        ctx = TrialContext(
            spec=spec,
            cell=cell,
            trial=trial,
            rng=trial_rng(spec.seed, cell.index, trial),
            fault_factory=fault_factory,
        )
        records.append(runner(ctx))
    return records


# -- worker-side state (multiprocessing) ------------------------------------

_WORKER_SPEC: CampaignSpec | None = None


def _worker_init(spec_dict: dict) -> None:
    global _WORKER_SPEC
    _WORKER_SPEC = CampaignSpec.from_dict(spec_dict)


def _worker_run(
    shard_tuple: tuple[int, int, int, int],
) -> tuple[int, list[dict]]:
    shard = Shard(*shard_tuple)
    records = run_shard(_WORKER_SPEC, shard)
    return shard.index, [record.to_dict() for record in records]


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork shares the parent's imported modules and warm caches;
    # spawn is the portable fallback.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def default_workers() -> int:
    """Worker count matched to the usable cores of this machine."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int | None = None,
    artifacts_dir: str | os.PathLike | None = None,
    overwrite: bool = False,
    shard_limit: int | None = None,
    keep_records: bool = False,
    fault_factory: Callable | None = None,
    on_shard: Callable[[Shard, int, int], None] | None = None,
) -> CampaignReport:
    """Run (or resume) a campaign.

    Parameters
    ----------
    spec:
        The declarative campaign description.
    workers:
        ``None`` or ``1`` -- serial in-process execution; ``n > 1`` --
        a ``multiprocessing`` pool of ``n`` processes.  Results are
        bitwise identical either way.
    artifacts_dir:
        When given, completed shards persist as JSONL under this
        directory and a re-run of the same spec resumes, executing
        only the missing shards.  A directory holding a *different*
        spec raises :class:`~repro.campaigns.artifacts.
        SpecMismatchError` unless ``overwrite=True``.
    shard_limit:
        Execute at most this many *new* shards this call (budgeted /
        incremental runs; the returned report has
        ``complete == False`` until all shards exist).
    keep_records:
        Attach every :class:`TrialRecord`, sorted by
        ``(cell, trial)``, to the returned report as ``.records`` --
        for adapters that need per-trial detail.
    fault_factory:
        Legacy escape hatch: a callable ``(rng) -> FaultModel`` used
        instead of ``spec.fault``.  Not serialisable, therefore
        serial-only.
    on_shard:
        Progress callback ``(shard, n_done, n_total)`` invoked as
        each shard completes (worker order, not shard order).
    """
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    n_workers = 1 if workers is None else workers
    if fault_factory is not None and n_workers > 1:
        raise ValueError(
            "fault_factory is a non-serialisable in-process hook; "
            "it requires serial execution (workers=1)"
        )

    start_time = time.perf_counter()
    shards = iter_shards(spec)
    store: CampaignStore | None = None
    shard_records: dict[int, list[TrialRecord]] = {}
    resumed = 0
    if artifacts_dir is not None:
        store = CampaignStore(artifacts_dir, spec)
        store.prepare(overwrite=overwrite)
        for index in store.completed_shards():
            if index < len(shards):
                shard_records[index] = store.load_shard(index)
        resumed = len(shard_records)

    pending = [s for s in shards if s.index not in shard_records]
    if shard_limit is not None:
        if shard_limit < 0:
            raise ValueError("shard_limit must be >= 0")
        pending = pending[:shard_limit]

    n_total = len(shards)

    def finish_shard(shard: Shard, records: list[TrialRecord]) -> None:
        shard_records[shard.index] = records
        if store is not None:
            store.write_shard(shard.index, records)
        if on_shard is not None:
            on_shard(shard, len(shard_records), n_total)

    if n_workers > 1 and pending:
        ctx = _pool_context()
        by_index = {shard.index: shard for shard in pending}
        with ctx.Pool(
            processes=n_workers,
            initializer=_worker_init,
            initargs=(spec.to_dict(),),
        ) as pool:
            results = pool.imap_unordered(
                _worker_run, [s.to_tuple() for s in pending]
            )
            for index, record_dicts in results:
                finish_shard(
                    by_index[index],
                    [TrialRecord.from_dict(d) for d in record_dicts],
                )
    else:
        for shard in pending:
            finish_shard(
                shard, run_shard(spec, shard, fault_factory=fault_factory)
            )

    # Deterministic aggregation: shards merge in index order, records
    # within a shard are already in trial order.
    cells = {
        cell.index: CellReport(index=cell.index, overrides=cell.overrides)
        for cell in spec.cells()
    }
    for index in sorted(shard_records):
        for record in shard_records[index]:
            cells[record.cell].record(record)
    report = CampaignReport(
        spec_name=spec.name,
        spec_hash=spec.content_hash(),
        target=spec.target,
        total_trials_expected=spec.total_trials,
        cells=cells,
        elapsed_seconds=time.perf_counter() - start_time,
        workers=n_workers,
        resumed_shards=resumed,
    )
    if keep_records:
        records = [
            record
            for index in sorted(shard_records)
            for record in shard_records[index]
        ]
        report.records = sorted(records, key=lambda r: r.sort_key)
    if store is not None and report.complete:
        store.write_report(report)
    return report

"""Resumable campaign artifacts.

Layout of an artifact directory::

    <dir>/spec.json            # the spec + its content hash
    <dir>/shards/shard-000042.jsonl   # one TrialRecord per line
    <dir>/report.json          # written when the campaign completes

Shard files are written to a temporary sibling and atomically renamed
into place, so a file that exists is always a *complete* shard: an
interrupted run leaves no partial artifacts, and re-running the same
spec against the directory skips exactly the shards that finished.
Because trial streams are addressed by ``(cell, trial)`` (see
:mod:`repro.campaigns.seeding`), a resumed campaign reproduces the
uninterrupted run bit-for-bit.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.campaigns.report import CampaignReport, TrialRecord
from repro.campaigns.spec import CampaignSpec

_SHARD_PREFIX = "shard-"
_SHARD_SUFFIX = ".jsonl"


class SpecMismatchError(RuntimeError):
    """The artifact directory belongs to a different campaign spec."""


class CampaignStore:
    """Artifact reader/writer for one campaign directory."""

    def __init__(self, path: str | os.PathLike, spec: CampaignSpec) -> None:
        self.path = Path(path)
        self.spec = spec
        self.spec_hash = spec.content_hash()
        self.shards_dir = self.path / "shards"

    # -- lifecycle --------------------------------------------------------
    def prepare(self, overwrite: bool = False) -> None:
        """Create the directory, or adopt/refuse an existing one.

        An existing directory with a matching spec hash is adopted
        (resume).  A mismatching hash raises
        :class:`SpecMismatchError` unless ``overwrite=True``, which
        discards the stale shards -- mixing trials from two different
        specs would silently corrupt the aggregates.
        """
        spec_file = self.path / "spec.json"
        if spec_file.exists():
            stored = json.loads(spec_file.read_text())
            if stored.get("content_hash") == self.spec_hash:
                self.shards_dir.mkdir(parents=True, exist_ok=True)
                return
            if not overwrite:
                raise SpecMismatchError(
                    f"{self.path} holds artifacts for spec hash "
                    f"{stored.get('content_hash', '?')[:12]}..., not "
                    f"{self.spec_hash[:12]}...; pass overwrite=True to "
                    "discard them"
                )
            self._discard_stale_artifacts()
        elif self.completed_shards():
            # Shard files with no spec.json (deleted manifest, partial
            # copy): their provenance is unknowable, so adopting them
            # would merge foreign trials into this campaign unchecked.
            if not overwrite:
                raise SpecMismatchError(
                    f"{self.path} contains shard files but no "
                    "spec.json, so they cannot be verified against "
                    "this spec; pass overwrite=True to discard them"
                )
            self._discard_stale_artifacts()
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        self._write_atomic(
            spec_file,
            json.dumps(
                {
                    "content_hash": self.spec_hash,
                    "spec": self.spec.to_dict(),
                },
                indent=2,
                sort_keys=True,
            ),
        )

    def _discard_stale_artifacts(self) -> None:
        for stale in self.shards_dir.glob(
            f"{_SHARD_PREFIX}*{_SHARD_SUFFIX}"
        ):
            stale.unlink()
        (self.path / "report.json").unlink(missing_ok=True)

    # -- shards -----------------------------------------------------------
    def _shard_path(self, index: int) -> Path:
        return self.shards_dir / (
            f"{_SHARD_PREFIX}{index:06d}{_SHARD_SUFFIX}"
        )

    def completed_shards(self) -> set[int]:
        """Indices of shards already on disk (always complete files)."""
        done = set()
        for file in self.shards_dir.glob(
            f"{_SHARD_PREFIX}*{_SHARD_SUFFIX}"
        ):
            stem = file.name[len(_SHARD_PREFIX):-len(_SHARD_SUFFIX)]
            try:
                done.add(int(stem))
            except ValueError:
                continue
        return done

    def write_shard(self, index: int, records: list[TrialRecord]) -> None:
        content = "".join(
            record.to_json() + "\n" for record in records
        )
        self._write_atomic(self._shard_path(index), content)

    def load_shard(self, index: int) -> list[TrialRecord]:
        lines = self._shard_path(index).read_text().splitlines()
        return [TrialRecord.from_json(line) for line in lines if line]

    def all_records(self) -> list[TrialRecord]:
        """Every stored trial, sorted by ``(cell, trial)``."""
        records: list[TrialRecord] = []
        for index in sorted(self.completed_shards()):
            records.extend(self.load_shard(index))
        return sorted(records, key=lambda r: r.sort_key)

    # -- report -----------------------------------------------------------
    def write_report(self, report: CampaignReport) -> None:
        self._write_atomic(
            self.path / "report.json",
            json.dumps(report.to_dict(), indent=2, sort_keys=True),
        )

    def load_report(self) -> CampaignReport:
        data = json.loads((self.path / "report.json").read_text())
        return CampaignReport.from_dict(data)

    # -- internals --------------------------------------------------------
    def _write_atomic(self, path: Path, content: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(content)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

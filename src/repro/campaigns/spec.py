"""Declarative campaign descriptions.

A :class:`CampaignSpec` says *what* to measure -- fault model, target
kernel/pipeline, trial count, scenario grid -- and nothing about *how*
it runs (worker count, artifact paths): the same spec therefore hashes
to the same :meth:`~CampaignSpec.content_hash` whether it executes
serially on a laptop or sharded across a pool, which is what makes
resume (:mod:`repro.campaigns.artifacts`) safe.

Specs follow the ``repro.api.config`` conventions: frozen keyword-only
dataclasses, eager ``__post_init__`` validation, and lossless
``to_dict``/``from_dict`` round-tripping so campaigns can live in JSON
next to the pipeline configs they exercise.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.api.config import _check_no_unknown_keys
from repro.faults.models import (
    FaultModel,
    IntermittentFault,
    PermanentFault,
    TransientFault,
)

#: Prefix a grid axis with this to sweep a fault parameter instead of
#: a target parameter: ``{"fault.probability": (1e-3, 1e-2)}``.
FAULT_AXIS_PREFIX = "fault."


def _build_transient(params: dict, rng) -> FaultModel:
    bit_range = params.get("bit_range")
    return TransientFault(
        params.get("probability", 1e-3),
        rng,
        bit_range=None if bit_range is None else tuple(bit_range),
    )


def _build_intermittent(params: dict, rng) -> FaultModel:
    return IntermittentFault(
        burst_start=params.get("burst_start", 1e-3),
        burst_end=params.get("burst_end", 0.5),
        rng=rng,
    )


def _build_permanent(params: dict, rng) -> FaultModel:
    return PermanentFault(bit=params.get("bit", 30), rng=rng)


#: kind -> (allowed parameter names, builder).  The builder takes the
#: spec's parameter dict and an **explicit** generator -- campaign
#: trials never rely on a fault model's default stream.
FAULT_KINDS: dict[str, tuple[frozenset[str], Any]] = {
    "transient": (
        frozenset({"probability", "bit_range"}), _build_transient
    ),
    "intermittent": (
        frozenset({"burst_start", "burst_end"}), _build_intermittent
    ),
    "permanent": (frozenset({"bit"}), _build_permanent),
}


def _normalise(value: Any) -> Any:
    """Make a parameter value canonical and JSON-stable.

    Tuples/lists become tuples recursively so that equality and
    hashing are insensitive to whether the spec came from Python
    literals or a JSON file.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_normalise(v) for v in value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


@dataclass(frozen=True, kw_only=True)
class FaultSpec:
    """Serialisable description of a fault model.

    ``kind`` selects from :data:`FAULT_KINDS`; ``params`` are the
    model's constructor arguments.  :meth:`build` requires an explicit
    generator: the engine hands every trial its own spawned stream
    (see :mod:`repro.campaigns.seeding`), so two models built from the
    same spec never share or replay a stream.
    """

    kind: str = "transient"
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(FAULT_KINDS)}"
            )
        allowed, _ = FAULT_KINDS[self.kind]
        unknown = set(self.params) - allowed
        if unknown:
            raise ValueError(
                f"fault kind {self.kind!r} does not accept "
                f"{sorted(unknown)}; allowed: {sorted(allowed)}"
            )
        object.__setattr__(
            self,
            "params",
            {key: _normalise(v) for key, v in self.params.items()},
        )
        # Surface bad parameter values (probability out of range, bit
        # out of range, ...) at spec-construction time, not mid-shard.
        # repro: allow[RNG-SEED] -- throwaway validation generator,
        # discarded immediately; trial streams come from
        # campaigns.seeding's spawned SeedSequences.
        self.build(np.random.default_rng(0))

    def build(self, rng: np.random.Generator) -> FaultModel:
        """Instantiate the fault model on an explicit stream."""
        if rng is None:
            raise ValueError(
                "FaultSpec.build requires an explicit Generator; "
                "campaign trials must not share a default stream"
            )
        _, builder = FAULT_KINDS[self.kind]
        return builder(self.params, rng)

    def override(self, **params: Any) -> FaultSpec:
        """A copy with some parameters replaced (grid sweeps)."""
        return replace(self, params={**self.params, **params})

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "params": {
                key: _jsonable(v) for key, v in sorted(self.params.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> FaultSpec:
        _check_no_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class CampaignCell:
    """One point of a campaign's scenario grid.

    ``overrides`` maps axis names (as written in the spec's grid) to
    this cell's values; ``params`` is the merged target parameter set
    and ``fault`` the merged fault spec.
    """

    index: int
    overrides: dict[str, Any]
    fault: FaultSpec
    params: dict[str, Any]


@dataclass(frozen=True, kw_only=True)
class CampaignSpec:
    """Everything the campaign engine needs to run an experiment.

    Attributes
    ----------
    name:
        Display name, carried into reports and artifact manifests.
    target:
        Key into :data:`repro.api.CAMPAIGN_TARGETS` -- the per-trial
        experiment (``"reliable_conv"``, ``"pipeline"``,
        ``"baseline"``, ``"checkpoint_segment"``, or a registered
        extension).
    fault:
        Base fault model; grid axes prefixed ``"fault."`` override
        its parameters per cell.
    trials:
        Trials **per grid cell**.
    seed:
        Root seed; every trial derives an independent stream from it
        (:func:`repro.campaigns.seeding.trial_seed`).
    grid:
        Scenario axes: ``{axis: (value, ...)}``.  Cells are the cross
        product, enumerated with axis names sorted and values in the
        order given.  Axes without the ``"fault."`` prefix override
        ``target_params``.
    target_params:
        Base keyword parameters for the target runner.
    atol:
        Tolerance handed to outcome classification.
    shard_size:
        Trials per shard -- the unit of parallel dispatch, artifact
        granularity and resume.
    """

    name: str = "campaign"
    target: str = "reliable_conv"
    fault: FaultSpec = field(default_factory=FaultSpec)
    trials: int = 100
    seed: int = 0
    grid: dict[str, tuple] = field(default_factory=dict)
    target_params: dict[str, Any] = field(default_factory=dict)
    atol: float = 0.0
    shard_size: int = 64

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("name must be non-empty")
        if not self.target:
            raise ValueError("target must be non-empty")
        if not isinstance(self.fault, FaultSpec):
            raise TypeError("fault must be a FaultSpec")
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if self.shard_size <= 0:
            raise ValueError("shard_size must be positive")
        if self.atol < 0:
            raise ValueError("atol must be non-negative")
        grid = {}
        for axis, values in self.grid.items():
            if not isinstance(axis, str) or not axis:
                raise ValueError("grid axes must be non-empty strings")
            values = _normalise(values)
            if not isinstance(values, tuple) or not values:
                raise ValueError(
                    f"grid axis {axis!r} needs a non-empty sequence "
                    "of values"
                )
            grid[axis] = values
        object.__setattr__(self, "grid", grid)
        object.__setattr__(
            self,
            "target_params",
            {k: _normalise(v) for k, v in self.target_params.items()},
        )
        # Building the cells validates every fault-axis combination.
        self.cells()

    # -- grid -------------------------------------------------------------
    def cells(self) -> tuple[CampaignCell, ...]:
        """The scenario cells, in deterministic enumeration order.

        Computed once and cached on the (frozen, hence immutable)
        spec: every shard execution indexes into this, and rebuilding
        the cross product -- with its eager per-cell fault validation
        -- per shard would cost O(cells) work per lookup.
        """
        cached = getattr(self, "_cells", None)
        if cached is not None:
            return cached
        axes = sorted(self.grid)
        combos = itertools.product(*(self.grid[a] for a in axes))
        cells = []
        for index, combo in enumerate(combos):
            overrides = dict(zip(axes, combo))
            fault = self.fault
            params = dict(self.target_params)
            fault_overrides = {}
            for axis, value in overrides.items():
                if axis.startswith(FAULT_AXIS_PREFIX):
                    key = axis[len(FAULT_AXIS_PREFIX):]
                    fault_overrides[key] = value
                else:
                    params[axis] = value
            if fault_overrides:
                fault = fault.override(**fault_overrides)
            cells.append(
                CampaignCell(
                    index=index,
                    overrides=overrides,
                    fault=fault,
                    params=params,
                )
            )
        object.__setattr__(self, "_cells", tuple(cells))
        return self._cells

    @property
    def n_cells(self) -> int:
        n = 1
        for values in self.grid.values():
            n *= len(values)
        return n

    @property
    def total_trials(self) -> int:
        return self.n_cells * self.trials

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "target": self.target,
            "fault": self.fault.to_dict(),
            "trials": self.trials,
            "seed": self.seed,
            "grid": {
                axis: [_jsonable(v) for v in values]
                for axis, values in sorted(self.grid.items())
            },
            "target_params": {
                key: _jsonable(v)
                for key, v in sorted(self.target_params.items())
            },
            "atol": self.atol,
            "shard_size": self.shard_size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> CampaignSpec:
        _check_no_unknown_keys(cls, data)
        data = dict(data)
        if "fault" in data and isinstance(data["fault"], dict):
            data["fault"] = FaultSpec.from_dict(data["fault"])
        return cls(**data)

    def content_hash(self) -> str:
        """Stable digest of the experiment's identity.

        Execution knobs (worker count, artifact dir) are not part of
        the spec, so two runs with the same hash are guaranteed the
        same trial set and the same per-trial streams -- the resume
        precondition.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

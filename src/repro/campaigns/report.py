"""Trial records and streaming campaign aggregation.

Three levels:

* :class:`TrialRecord` -- one trial's observables, exactly what the
  JSONL artifacts store.  No wall-clock fields: a record is a pure
  function of ``(spec, cell, trial)``, which is what lets determinism
  tests compare artifact files byte-for-byte across worker counts.
* :class:`CellReport` -- per-grid-cell aggregates: outcome counts, a
  confusion matrix over ``(expected, observed)`` labels, detection/
  SDC rates mirroring :class:`repro.faults.campaign.CampaignResult`.
* :class:`CampaignReport` -- the whole campaign: cell reports plus
  execution metadata (timing, workers, resume counts).  Timing is
  excluded from :meth:`~CampaignReport.fingerprint`, so reports from
  different worker counts fingerprint identically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.faults.campaign import CampaignResult, Outcome

#: Canonical outcome label order for tables and serialisation.
OUTCOME_ORDER: tuple[str, ...] = tuple(o.value for o in Outcome)


@dataclass(frozen=True, kw_only=True)
class TrialRecord:
    """One trial's classified observables.

    ``expected``/``observed`` are target-defined labels (a golden
    decision vs the decision taken, ``"exact"`` vs ``"deviant"`` for
    kernel values, ...); the cell confusion matrix counts their
    pairs.  ``metrics`` carries target-specific numeric payloads
    (e.g. executed-operation counts for segment-cost simulation).
    """

    cell: int
    trial: int
    outcome: str
    expected: str
    observed: str
    faults_fired: int = 0
    errors_detected: int = 0
    rollbacks: int = 0
    aborted: bool = False
    metrics: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOME_ORDER:
            raise ValueError(
                f"unknown outcome {self.outcome!r}; "
                f"expected one of {OUTCOME_ORDER}"
            )

    @property
    def sort_key(self) -> tuple[int, int]:
        return (self.cell, self.trial)

    def to_dict(self) -> dict:
        return {
            "cell": self.cell,
            "trial": self.trial,
            "outcome": self.outcome,
            "expected": self.expected,
            "observed": self.observed,
            "faults_fired": self.faults_fired,
            "errors_detected": self.errors_detected,
            "rollbacks": self.rollbacks,
            "aborted": self.aborted,
            "metrics": {
                key: self.metrics[key] for key in sorted(self.metrics)
            },
        }

    def to_json(self) -> str:
        """Canonical single-line JSON (the JSONL artifact format)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: dict) -> TrialRecord:
        return cls(**data)

    @classmethod
    def from_json(cls, line: str) -> TrialRecord:
        return cls.from_dict(json.loads(line))


@dataclass
class CellReport:
    """Aggregates for one scenario cell."""

    index: int
    overrides: dict[str, Any] = field(default_factory=dict)
    trials: int = 0
    counts: dict[str, int] = field(
        default_factory=lambda: {label: 0 for label in OUTCOME_ORDER}
    )
    confusion: dict[tuple[str, str], int] = field(default_factory=dict)
    faults_fired: int = 0
    errors_detected: int = 0
    rollbacks: int = 0
    metric_sums: dict[str, float] = field(default_factory=dict)

    def record(self, record: TrialRecord) -> None:
        self.trials += 1
        self.counts[record.outcome] += 1
        pair = (record.expected, record.observed)
        self.confusion[pair] = self.confusion.get(pair, 0) + 1
        self.faults_fired += record.faults_fired
        self.errors_detected += record.errors_detected
        self.rollbacks += record.rollbacks
        for key, value in record.metrics.items():
            self.metric_sums[key] = self.metric_sums.get(key, 0.0) + value

    # -- rates (same semantics as faults.campaign.CampaignResult) ---------
    @property
    def faulted(self) -> int:
        return self.trials - self.counts[Outcome.CLEAN.value]

    @property
    def detection_coverage(self) -> float:
        if self.faulted == 0:
            return 1.0
        safe = (
            self.counts[Outcome.MASKED.value]
            + self.counts[Outcome.DETECTED_RECOVERED.value]
            + self.counts[Outcome.DETECTED_ABORTED.value]
        )
        return safe / self.faulted

    @property
    def silent_corruption_rate(self) -> float:
        if self.faulted == 0:
            return 0.0
        return self.counts[Outcome.SILENT_CORRUPTION.value] / self.faulted

    def to_campaign_result(self) -> CampaignResult:
        """This cell as a legacy :class:`CampaignResult`."""
        result = CampaignResult(
            runs=self.trials,
            counts={o: self.counts[o.value] for o in Outcome},
            errors_detected=self.errors_detected,
            rollbacks=self.rollbacks,
            faults_fired=self.faults_fired,
        )
        return result

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "overrides": dict(sorted(self.overrides.items())),
            "trials": self.trials,
            "counts": {label: self.counts[label] for label in OUTCOME_ORDER},
            "confusion": [
                [expected, observed, count]
                for (expected, observed), count in sorted(
                    self.confusion.items()
                )
            ],
            "faults_fired": self.faults_fired,
            "errors_detected": self.errors_detected,
            "rollbacks": self.rollbacks,
            "metric_sums": {
                key: self.metric_sums[key]
                for key in sorted(self.metric_sums)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> CellReport:
        data = dict(data)
        data["confusion"] = {
            (expected, observed): count
            for expected, observed, count in data.get("confusion", [])
        }
        return cls(**data)


@dataclass
class CampaignReport:
    """Whole-campaign aggregates plus execution metadata.

    ``cells`` maps cell index to its :class:`CellReport`.  Execution
    metadata (``elapsed_seconds``, ``workers``, ``resumed_shards``)
    describes *this run* and is excluded from :meth:`fingerprint`,
    which digests only the experiment's deterministic content.
    """

    spec_name: str
    spec_hash: str
    target: str
    total_trials_expected: int
    cells: dict[int, CellReport] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    workers: int = 1
    resumed_shards: int = 0
    #: Per-trial records sorted by ``(cell, trial)``; populated only
    #: when the engine runs with ``keep_records=True``.  Not part of
    #: the serialised report (the JSONL artifacts are the record
    #: store).
    records: list[TrialRecord] | None = None

    # -- aggregate views --------------------------------------------------
    @property
    def trials(self) -> int:
        return sum(cell.trials for cell in self.cells.values())

    @property
    def complete(self) -> bool:
        return self.trials == self.total_trials_expected

    @property
    def counts(self) -> dict[str, int]:
        total = {label: 0 for label in OUTCOME_ORDER}
        for cell in self.cells.values():
            for label, count in cell.counts.items():
                total[label] += count
        return total

    @property
    def detection_coverage(self) -> float:
        faulted = sum(cell.faulted for cell in self.cells.values())
        if faulted == 0:
            return 1.0
        unsafe = self.counts[Outcome.SILENT_CORRUPTION.value]
        return (faulted - unsafe) / faulted

    @property
    def silent_corruption_rate(self) -> float:
        faulted = sum(cell.faulted for cell in self.cells.values())
        if faulted == 0:
            return 0.0
        return self.counts[Outcome.SILENT_CORRUPTION.value] / faulted

    def cell(self, index: int) -> CellReport:
        return self.cells[index]

    def to_campaign_result(self) -> CampaignResult:
        """All cells summed into a legacy :class:`CampaignResult`."""
        merged = CellReport(index=-1)
        for index in sorted(self.cells):
            cell = self.cells[index]
            merged.trials += cell.trials
            for label, count in cell.counts.items():
                merged.counts[label] += count
            merged.faults_fired += cell.faults_fired
            merged.errors_detected += cell.errors_detected
            merged.rollbacks += cell.rollbacks
        return merged.to_campaign_result()

    # -- serialisation ----------------------------------------------------
    def deterministic_dict(self) -> dict:
        """The worker-count-invariant portion of the report."""
        return {
            "spec_name": self.spec_name,
            "spec_hash": self.spec_hash,
            "target": self.target,
            "total_trials_expected": self.total_trials_expected,
            "cells": [
                self.cells[index].to_dict()
                for index in sorted(self.cells)
            ],
        }

    def fingerprint(self) -> str:
        """Digest of :meth:`deterministic_dict`.

        Identical for any worker count, shard size or resume path
        that executed the same spec -- the determinism tests and the
        scaling benchmark assert exactly this.
        """
        canonical = json.dumps(
            self.deterministic_dict(),
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def to_dict(self) -> dict:
        data = self.deterministic_dict()
        data["elapsed_seconds"] = self.elapsed_seconds
        data["workers"] = self.workers
        data["resumed_shards"] = self.resumed_shards
        return data

    @classmethod
    def from_dict(cls, data: dict) -> CampaignReport:
        data = dict(data)
        cells = {
            cell["index"]: CellReport.from_dict(cell)
            for cell in data.pop("cells", [])
        }
        return cls(cells=cells, **data)

    def to_text(self) -> str:
        """Per-cell outcome table plus headline rates."""
        lines = [
            f"campaign {self.spec_name!r} target={self.target} "
            f"trials={self.trials}/{self.total_trials_expected} "
            f"workers={self.workers} "
            f"elapsed={self.elapsed_seconds:.2f}s",
        ]
        header = "cell  " + " ".join(
            f"{label[:12]:>12}" for label in OUTCOME_ORDER
        ) + f" {'coverage':>9} {'sdc':>7}  overrides"
        lines.append(header)
        for index in sorted(self.cells):
            cell = self.cells[index]
            row = f"{index:>4}  " + " ".join(
                f"{cell.counts[label]:>12}" for label in OUTCOME_ORDER
            )
            row += (
                f" {cell.detection_coverage:>9.3f} "
                f"{cell.silent_corruption_rate:>7.3f}  "
            )
            row += ", ".join(
                f"{axis}={value}"
                for axis, value in sorted(cell.overrides.items())
            ) or "-"
            lines.append(row)
        lines.append(
            f"overall coverage={self.detection_coverage:.3f} "
            f"sdc={self.silent_corruption_rate:.3f} "
            f"fingerprint={self.fingerprint()[:12]}"
        )
        return "\n".join(lines)

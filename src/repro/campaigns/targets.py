"""Per-trial experiment runners (campaign targets).

A *target* is a callable ``(TrialContext) -> TrialRecord`` registered
in :data:`repro.api.CAMPAIGN_TARGETS`.  The engine hands each trial a
context carrying the merged cell parameters, the cell's fault spec
and the trial's own spawned random stream; the target runs one
experiment and classifies it through
:func:`repro.faults.campaign.classify_outcome`.

Built-ins:

``reliable_conv``
    One reliable-convolution output element (paper Algorithm 3) under
    a qualified operator with leaky-bucket rollback -- the kernel the
    paper's Table-style coverage statistics are built from.
``baseline``
    The same synthetic element through completely unprotected
    arithmetic: no qualifier, no detection, no abort path.  The
    floor every protection level is compared against.
``pipeline``
    A full hybrid inference through
    :func:`repro.api.build_pipeline` with transient faults injected
    into the dependable partition's arithmetic; ``expected`` /
    ``observed`` are the golden and actual decisions.
``checkpoint_segment``
    A DMR checkpointed segment
    (:class:`repro.reliable.checkpoint.CheckpointedSegment`) --
    rollback-distance cost simulation.
``serving_chaos``
    A service-level chaos experiment: a live
    :class:`~repro.serving.server.PipelineServer` under a seeded
    fault storm (:mod:`repro.chaos`), with the serving invariants
    checked as postconditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.api.registry import CAMPAIGN_TARGETS
from repro.campaigns.spec import CampaignCell, CampaignSpec
from repro.faults.campaign import classify_outcome
from repro.faults.injector import FaultyExecutionUnit
from repro.faults.models import FaultModel
from repro.campaigns.report import TrialRecord
from repro.reliable.checkpoint import CheckpointedSegment, RollbackPolicy
from repro.reliable.convolution import ConvolutionStats, reliable_convolution
from repro.reliable.errors import PersistentFailureError
from repro.reliable.leaky_bucket import LeakyBucket
from repro.reliable.operators import RedundantOperator, make_operator
from repro.reliable.vectorized import (
    speculation_is_exact,
    vectorized_reliable_convolution,
)


def _element_runner(engine: str, operator):
    """Resolve a cell's ``engine`` parameter for element targets.

    ``"scalar"`` is the per-operation Algorithm 3 loop (the historical
    campaign arithmetic, with its per-op fault stream);
    ``"vectorized"`` speculates the element as array passes with
    array-level fault injection and repairs through the scalar path on
    disagreement; ``"auto"`` (default) uses the vectorized form only
    when it is provably bit-identical to scalar.  Stochastic fault
    models (transient, intermittent) therefore stay on the scalar
    path; deterministic stuck-at models may vectorize, with records
    guaranteed bitwise equal either way -- so historical campaign
    results (and the hybrid-fault-study golden pin) are stable unless
    a cell opts in.
    """
    if engine == "vectorized" or (
        engine == "auto" and speculation_is_exact(operator)
    ):
        return vectorized_reliable_convolution
    if engine in ("auto", "scalar"):
        return reliable_convolution
    raise ValueError(
        f"unknown engine parameter {engine!r}; "
        "choose 'auto', 'scalar' or 'vectorized'"
    )


@dataclass(frozen=True)
class TrialContext:
    """Everything a target needs to run one trial."""

    spec: CampaignSpec
    cell: CampaignCell
    trial: int
    rng: np.random.Generator
    #: Non-serialisable escape hatch used by the legacy
    #: ``run_operator_campaign`` surface; forces serial execution.
    fault_factory: Callable[[np.random.Generator], FaultModel] | None = None

    def param(self, name: str, default: Any) -> Any:
        return self.cell.params.get(name, default)

    def build_fault(self) -> FaultModel:
        """A fresh fault model on this trial's own stream."""
        if self.fault_factory is not None:
            return self.fault_factory(self.rng)
        return self.cell.fault.build(self.rng)


def _value_labels(
    golden: float, value: float | None, aborted: bool, atol: float
) -> tuple[str, str]:
    if aborted:
        return "exact", "abort"
    observed = "exact" if abs(value - golden) <= atol else "deviant"
    return "exact", observed


def _draw_element(
    rng: np.random.Generator, vector_length: int
) -> tuple[np.ndarray, np.ndarray, float]:
    patch = rng.standard_normal(vector_length).astype(np.float32)
    weights = rng.standard_normal(vector_length).astype(np.float32)
    bias = float(rng.standard_normal())
    return patch, weights, bias


@CAMPAIGN_TARGETS.register("reliable_conv")
def run_reliable_conv_trial(ctx: TrialContext) -> TrialRecord:
    """One protected convolution element under injection."""
    vector_length = ctx.param("vector_length", 32)
    operator_kind = ctx.param("operator_kind", "dmr")
    bucket_factor = ctx.param("bucket_factor", 2)
    bucket_ceiling = ctx.param("bucket_ceiling", None)
    engine = ctx.param("engine", "auto")

    patch, weights, bias = _draw_element(ctx.rng, vector_length)
    golden = reliable_convolution(
        patch, weights, bias, make_operator("plain")
    ).value

    fault = ctx.build_fault()
    unit = FaultyExecutionUnit(fault)
    operator = make_operator(operator_kind, unit)
    convolve = _element_runner(engine, operator)
    bucket = LeakyBucket(factor=bucket_factor, ceiling=bucket_ceiling)
    stats = ConvolutionStats()
    aborted = False
    value: float | None = None
    try:
        value = convolve(
            patch, weights, bias, operator, bucket=bucket, stats=stats
        ).value
    except PersistentFailureError:
        aborted = True
    outcome = classify_outcome(
        golden,
        value,
        fault_fired=fault.activations > 0,
        errors_detected=stats.errors_detected,
        aborted=aborted,
        atol=ctx.spec.atol,
    )
    expected, observed = _value_labels(
        golden, value, aborted, ctx.spec.atol
    )
    return TrialRecord(
        cell=ctx.cell.index,
        trial=ctx.trial,
        outcome=outcome.value,
        expected=expected,
        observed=observed,
        faults_fired=fault.activations,
        errors_detected=stats.errors_detected,
        rollbacks=stats.rollbacks,
        aborted=aborted,
        metrics={"operations": float(stats.operations)},
    )


@CAMPAIGN_TARGETS.register("baseline")
def run_baseline_trial(ctx: TrialContext) -> TrialRecord:
    """The same element through unprotected arithmetic.

    No qualified operators, no bucket: a fired fault either lands in
    bits that do not move the float (masked) or escapes silently --
    the unprotected floor of the paper's comparison.
    """
    vector_length = ctx.param("vector_length", 32)
    patch, weights, bias = _draw_element(ctx.rng, vector_length)
    golden = reliable_convolution(
        patch, weights, bias, make_operator("plain")
    ).value

    fault = ctx.build_fault()
    unit = FaultyExecutionUnit(fault)
    acc = 0.0
    for x, w in zip(patch, weights):
        acc = unit.add(acc, unit.multiply(float(x), float(w)))
    value = unit.add(acc, bias)
    outcome = classify_outcome(
        golden,
        value,
        fault_fired=fault.activations > 0,
        errors_detected=0,
        aborted=False,
        atol=ctx.spec.atol,
    )
    expected, observed = _value_labels(
        golden, value, False, ctx.spec.atol
    )
    return TrialRecord(
        cell=ctx.cell.index,
        trial=ctx.trial,
        outcome=outcome.value,
        expected=expected,
        observed=observed,
        faults_fired=fault.activations,
    )


# ---------------------------------------------------------------------------
# Full-pipeline target
# ---------------------------------------------------------------------------

#: Per-process caches: the pinned model and the golden (fault-free)
#: decision are pure functions of their keys, so caching only avoids
#: recomputation -- results are identical with or without a warm cache,
#: whichever worker a shard lands on.
_MODEL_CACHE: dict[tuple, Any] = {}
_GOLDEN_CACHE: dict[tuple, str] = {}


def pinned_stop_model(
    input_size: int, rng: np.random.Generator, n_classes: int = 8
):
    """The hybrid-fault-study stand-in model: Sobel-pinned conv1 and a
    head biased towards the safety class, so the decision matrix is
    exercised without a multi-minute training run.  The single
    implementation behind both the ``"pipeline"`` campaign target and
    ``repro.workflows.hybrid_fault_study``."""
    from repro.data import STOP_CLASS_INDEX
    from repro.models import alexnet_scaled
    from repro.vision.filters import sobel_axis_stack

    model = alexnet_scaled(
        n_classes=n_classes, input_size=input_size, rng=rng
    )
    conv1 = model.layer("conv1")
    conv1.set_filter(0, sobel_axis_stack("x", conv1.kernel_size, 3))
    conv1.set_filter(1, sobel_axis_stack("y", conv1.kernel_size, 3))
    model.layer("fc8").bias.value[STOP_CLASS_INDEX] = 10.0
    return model


def _pipeline_fixture(ctx: TrialContext):
    """(model, config, image) for this cell, cached per process."""
    from repro.api import PipelineConfig
    from repro.data import STOP_CLASS_INDEX, render_sign

    input_size = ctx.param("input_size", 96)
    class_index = ctx.param("class_index", 0)
    rotation_deg = ctx.param("rotation_deg", 5.0)
    # Batched-qualification strategy for the dependable path.  The
    # target infers one image per trial either way, and the "auto"
    # default is batched only when provably bit-identical, so
    # historical records and the golden pin are unchanged; campaigns
    # driving batched serving scenarios can pin "batched"/"scalar".
    qualifier_engine = ctx.param("qualifier_engine", "auto")
    key = (ctx.spec.seed, input_size, class_index, rotation_deg)
    if key not in _MODEL_CACHE:
        model = pinned_stop_model(
            input_size, np.random.default_rng(ctx.spec.seed)
        )
        image = render_sign(
            class_index, size=input_size,
            rotation=float(np.deg2rad(rotation_deg)),
        )
        _MODEL_CACHE[key] = (model, image)
    model, image = _MODEL_CACHE[key]
    from repro.api import QualifierConfig

    config = PipelineConfig(
        architecture="integrated",
        safety_class=STOP_CLASS_INDEX,
        name=ctx.spec.name,
        qualifier=QualifierConfig(engine=qualifier_engine),
    )
    return key, model, config, image


@CAMPAIGN_TARGETS.register("pipeline")
def run_pipeline_trial(ctx: TrialContext) -> TrialRecord:
    """One integrated-hybrid inference with PE transients injected
    into the dependable partition (cf. the hybrid fault study)."""
    from repro.api import build_pipeline
    from repro.reliable.executor import ReliableConv2D

    bucket_ceiling = ctx.param("bucket_ceiling", 1000)
    # The dependable partition's execution engine.  "auto" (default)
    # keeps fault-injected trials on the scalar per-operation path --
    # so historical results and the golden pin are bitwise unchanged
    # -- while a cell opting into "vectorized" gets array-level
    # injection on the speculative passes with scalar repair.
    engine = ctx.param("engine", "auto")
    key, model, config, image = _pipeline_fixture(ctx)

    if key not in _GOLDEN_CACHE:
        golden = build_pipeline(config, model).infer(image)
        _GOLDEN_CACHE[key] = golden.decision.value
    golden_decision = _GOLDEN_CACHE[key]

    fault = ctx.build_fault()
    pipeline = build_pipeline(config, model)
    pipeline.hybrid._reliable_conv = ReliableConv2D(
        model.layer("conv1"),
        RedundantOperator(FaultyExecutionUnit(fault)),
        bucket_ceiling=bucket_ceiling,
        on_persistent_failure="mark",
        engine=engine,
    )
    outcome = pipeline.infer(image)
    report = outcome.reliable_report
    decision = outcome.decision.value
    aborted = report.persistent_failures > 0
    classified = classify_outcome(
        0.0,
        None if aborted else (0.0 if decision == golden_decision else 1.0),
        fault_fired=fault.activations > 0,
        errors_detected=report.errors_detected,
        aborted=aborted,
    )
    return TrialRecord(
        cell=ctx.cell.index,
        trial=ctx.trial,
        outcome=classified.value,
        expected=golden_decision,
        observed=decision,
        faults_fired=fault.activations,
        errors_detected=report.errors_detected,
        rollbacks=report.rollbacks,
        aborted=aborted,
        metrics={
            "persistent_failures": float(report.persistent_failures),
            "qualifier_matches": float(outcome.verdict.matches),
        },
    )


@CAMPAIGN_TARGETS.register("checkpoint_segment")
def run_checkpoint_segment_trial(ctx: TrialContext) -> TrialRecord:
    """One DMR checkpointed segment: rollback-distance cost probe.

    ``metrics["total_ops"]`` counts unit executions plus comparison
    overhead, ``metrics["completed_ops"]`` the useful work -- their
    ratio over a cell reproduces the analytic expected-cost curve of
    :mod:`repro.workflows.rollback_distance`.
    """
    segment_size = ctx.param("segment_size", 16)
    compare_cost = float(ctx.param("compare_cost", 8.0))
    max_rollbacks = ctx.param("max_rollbacks", 50)

    values = ctx.rng.standard_normal(segment_size)
    weights = ctx.rng.standard_normal(segment_size)
    golden = 0.0
    for v, w in zip(values, weights):
        golden += float(v) * float(w)

    fault = ctx.build_fault()
    operator = RedundantOperator(FaultyExecutionUnit(fault))
    executions = {"n": 0}

    def compute():
        total = 0.0
        ok = True
        for v, w in zip(values, weights):
            result = operator.multiply(float(v), float(w))
            executions["n"] += 2  # DMR: two unit executions
            total += result.value
            ok = ok and result.ok
        return total, ok

    segment = CheckpointedSegment(
        compute,
        validate=lambda result: result[1],
        policy=RollbackPolicy(max_rollbacks=max_rollbacks),
    )
    aborted = False
    value: float | None = None
    try:
        value = segment.run()[0]
    except PersistentFailureError:
        aborted = True
    rollbacks = segment.rollbacks_performed
    outcome = classify_outcome(
        golden,
        value,
        fault_fired=fault.activations > 0,
        errors_detected=rollbacks,
        aborted=aborted,
        atol=ctx.spec.atol,
    )
    expected, observed = _value_labels(
        golden, value, aborted, ctx.spec.atol
    )
    return TrialRecord(
        cell=ctx.cell.index,
        trial=ctx.trial,
        outcome=outcome.value,
        expected=expected,
        observed=observed,
        faults_fired=fault.activations,
        errors_detected=rollbacks,
        rollbacks=rollbacks,
        aborted=aborted,
        metrics={
            "total_ops": executions["n"]
            + compare_cost * (1 + rollbacks),
            "completed_ops": float(segment_size),
        },
    )


@CAMPAIGN_TARGETS.register("serving_chaos")
def run_serving_chaos(ctx: TrialContext) -> TrialRecord:
    """One service-level chaos experiment against a live
    :class:`~repro.serving.server.PipelineServer` -- seeded fault
    storms with machine-checked serving invariants.  The
    implementation lives in :mod:`repro.chaos.campaign` (imported
    lazily so campaign workers resolve it without the serving stack
    on their import path at registry-load time)."""
    from repro.chaos.campaign import run_serving_chaos_trial

    return run_serving_chaos_trial(ctx)

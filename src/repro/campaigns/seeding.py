"""Deterministic per-trial seeding for campaign workers.

Every trial owns an independent random stream derived from the
campaign's root seed through :class:`numpy.random.SeedSequence` spawn
keys.  ``SeedSequence(entropy=root).spawn(c + 1)[c].spawn(t + 1)[t]``
is, by numpy's spawning contract, exactly
``SeedSequence(entropy=root, spawn_key=(c, t))`` -- so instead of
spawning sequentially (which would force every worker to walk the
whole spawn tree) each worker addresses its trials directly by
``(cell_index, trial_index)``.

Consequences, relied on throughout the engine and pinned by
``tests/campaigns/test_determinism.py``:

* a trial's stream depends only on ``(root_seed, cell, trial)`` --
  never on the worker that ran it, the shard it landed in, or the
  order shards completed;
* campaign results are therefore **bitwise identical** for any worker
  count and any shard size;
* neighbouring trials get statistically independent streams (the
  whole point of ``SeedSequence`` over ``seed + trial`` arithmetic).
"""

from __future__ import annotations

import numpy as np


def trial_seed(
    root_seed: int, cell_index: int, trial_index: int
) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` owning one trial."""
    if cell_index < 0 or trial_index < 0:
        raise ValueError("cell_index and trial_index must be >= 0")
    return np.random.SeedSequence(
        entropy=root_seed, spawn_key=(cell_index, trial_index)
    )


def trial_rng(
    root_seed: int, cell_index: int, trial_index: int
) -> np.random.Generator:
    """A fresh generator on the trial's own stream."""
    return np.random.default_rng(
        trial_seed(root_seed, cell_index, trial_index)
    )

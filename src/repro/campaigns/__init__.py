"""``repro.campaigns`` -- the parallel fault-campaign engine.

The paper's headline claims are outcome *distributions* over
thousands of injected faults; this package is the machinery that
produces them at scale:

* **Specs** (:class:`CampaignSpec`, :class:`FaultSpec`) -- declarative,
  JSON-round-trippable descriptions of an experiment: fault model,
  target, trial count and scenario grid.
* **Seeding** (:func:`trial_rng`) -- every trial owns a
  ``SeedSequence``-spawned stream addressed by ``(seed, cell,
  trial)``, so results are bitwise identical for any worker count or
  shard order.
* **Engine** (:func:`run_campaign`) -- deterministic sharding, a
  ``multiprocessing`` executor with serial fallback, streaming
  aggregation into :class:`CampaignReport`.
* **Artifacts** (:class:`CampaignStore`) -- atomic JSONL shards with
  checkpoint/resume: re-running a spec executes only missing shards.
* **Targets** (:data:`repro.api.CAMPAIGN_TARGETS`) -- pluggable
  per-trial runners: the reliable-conv kernel, the unprotected
  baseline, the full hybrid pipeline, the checkpointed segment.

See ``docs/campaigns.md`` for the spec schema, the seeding/sharding
guarantees, resume semantics and the ``scripts/campaign.py`` CLI.
"""

from repro.campaigns.spec import (
    FAULT_KINDS,
    CampaignCell,
    CampaignSpec,
    FaultSpec,
)
from repro.campaigns.seeding import trial_rng, trial_seed
from repro.campaigns.report import (
    OUTCOME_ORDER,
    CampaignReport,
    CellReport,
    TrialRecord,
)
from repro.campaigns.artifacts import CampaignStore, SpecMismatchError
from repro.campaigns.engine import (
    Shard,
    default_workers,
    iter_shards,
    run_campaign,
    run_shard,
)
from repro.campaigns.targets import TrialContext

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "CampaignCell",
    "CampaignSpec",
    "trial_seed",
    "trial_rng",
    "OUTCOME_ORDER",
    "TrialRecord",
    "CellReport",
    "CampaignReport",
    "CampaignStore",
    "SpecMismatchError",
    "Shard",
    "iter_shards",
    "run_shard",
    "run_campaign",
    "default_workers",
    "TrialContext",
]

"""Empirical reliability statistics for fault campaigns.

Connects measured campaign outcomes back to the analytic model in
:mod:`repro.core.guarantee`: rate estimates with binomial confidence
intervals, so a campaign can state "SDC rate below X at 95%
confidence" -- the form a safety case needs.
"""

from __future__ import annotations

import math


def failure_rate_estimate(failures: int, trials: int) -> float:
    """Point estimate of a failure rate."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= failures <= trials:
        raise ValueError("failures must be within [0, trials]")
    return failures / trials


def empirical_coverage_interval(
    failures: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial failure rate.

    Preferred over the normal approximation because campaigns often
    observe zero failures, where the Wilson bound stays informative
    (`failures == 0` yields a non-trivial upper bound, the
    "demonstrated better than" number).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    p_hat = failure_rate_estimate(failures, trials)
    # Two-sided z for the requested confidence.
    z = _normal_quantile(0.5 + confidence / 2.0)
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(
            p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials)
        )
        / denom
    )
    return max(0.0, centre - half), min(1.0, centre + half)


def _normal_quantile(p: float) -> float:
    """Standard normal quantile via the SAX breakpoint helper."""
    from repro.sax.breakpoints import _normal_ppf

    return _normal_ppf(p)

"""Classification metrics used across the experiments."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.activations import softmax
from repro.nn.network import Sequential


def accuracy(model: Sequential, x: np.ndarray, y: np.ndarray,
             batch_size: int = 64) -> float:
    """Top-1 accuracy of a logits model."""
    return top_k_accuracy(model, x, y, k=1, batch_size=batch_size)


def top_k_accuracy(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    k: int = 1,
    batch_size: int = 64,
) -> float:
    """Fraction of samples whose true class is in the top-k logits."""
    if len(x) == 0:
        raise ValueError("empty evaluation set")
    if k < 1:
        raise ValueError("k must be >= 1")
    hits = 0
    for start in range(0, len(x), batch_size):
        logits = model.forward(x[start : start + batch_size])
        topk = np.argsort(logits, axis=1)[:, -k:]
        labels = y[start : start + batch_size]
        hits += int((topk == labels[:, None]).any(axis=1).sum())
    return hits / len(x)


def predictions(
    model: Sequential, x: np.ndarray, batch_size: int = 64
) -> np.ndarray:
    """Argmax class per sample."""
    out = []
    for start in range(0, len(x), batch_size):
        logits = model.forward(x[start : start + batch_size])
        out.append(logits.argmax(axis=1))
    return np.concatenate(out)


def class_confidences(
    model: Sequential,
    x: np.ndarray,
    class_index: int,
    batch_size: int = 64,
) -> np.ndarray:
    """Softmax confidence assigned to ``class_index`` for each sample.

    This is the quantity on the y-axis of the paper's Figure 4
    ("confidence values for the 'Stop' sign class").
    """
    confs = []
    for start in range(0, len(x), batch_size):
        logits = model.forward(x[start : start + batch_size])
        probs = softmax(logits)
        confs.append(probs[:, class_index])
    return np.concatenate(confs)


def mean_class_confidence(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    class_index: int,
    batch_size: int = 64,
) -> float:
    """Mean confidence for ``class_index`` over its true samples."""
    mask = y == class_index
    if not mask.any():
        raise ValueError(f"no samples of class {class_index}")
    return float(
        class_confidences(model, x[mask], class_index, batch_size).mean()
    )

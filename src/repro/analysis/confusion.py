"""Confusion matrices (paper Section III.B compares them before and
after filter replacement)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ConfusionMatrix:
    """Row = true class, column = predicted class."""

    matrix: np.ndarray
    class_names: list[str] | None = None

    @property
    def n_classes(self) -> int:
        return self.matrix.shape[0]

    def accuracy(self) -> float:
        total = self.matrix.sum()
        if total == 0:
            return 0.0
        return float(np.trace(self.matrix) / total)

    def per_class_recall(self) -> np.ndarray:
        """Recall (true-positive rate) per class; NaN when unseen."""
        totals = self.matrix.sum(axis=1)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                totals > 0, np.diag(self.matrix) / totals, np.nan
            )

    def per_class_precision(self) -> np.ndarray:
        """Precision per class; NaN when the class is never predicted."""
        totals = self.matrix.sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                totals > 0, np.diag(self.matrix) / totals, np.nan
            )

    def max_abs_difference(self, other: "ConfusionMatrix") -> int:
        """Largest per-cell count difference vs another matrix.

        The paper "compare[s] both the confusion matrices of the
        original and replaced filters ... and note[s] no substantial
        difference"; this is the scalar that claim reduces to.
        """
        if self.matrix.shape != other.matrix.shape:
            raise ValueError("matrices have different shapes")
        return int(np.abs(self.matrix - other.matrix).max())

    def to_text(self) -> str:
        """Plain-text rendering with optional class names."""
        names = self.class_names or [
            f"c{i}" for i in range(self.n_classes)
        ]
        width = max(max(len(n) for n in names), 5)
        header = " " * (width + 1) + " ".join(
            f"{n[:width]:>{width}}" for n in names
        )
        lines = [header]
        for i, name in enumerate(names):
            row = " ".join(
                f"{int(v):>{width}}" for v in self.matrix[i]
            )
            lines.append(f"{name[:width]:>{width}} {row}")
        return "\n".join(lines)


def confusion_matrix(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    n_classes: int,
    class_names: list[str] | None = None,
) -> ConfusionMatrix:
    """Build a confusion matrix from integer label arrays."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("label arrays differ in shape")
    if ((y_true < 0) | (y_true >= n_classes)).any():
        raise ValueError("y_true contains out-of-range labels")
    if ((y_pred < 0) | (y_pred >= n_classes)).any():
        raise ValueError("y_pred contains out-of-range labels")
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return ConfusionMatrix(matrix=matrix, class_names=class_names)

"""Evaluation metrics and reliability statistics."""

from repro.analysis.confusion import ConfusionMatrix, confusion_matrix
from repro.analysis.metrics import (
    accuracy,
    class_confidences,
    mean_class_confidence,
    top_k_accuracy,
)
from repro.analysis.reliability import (
    empirical_coverage_interval,
    failure_rate_estimate,
)

__all__ = [
    "ConfusionMatrix",
    "confusion_matrix",
    "accuracy",
    "top_k_accuracy",
    "class_confidences",
    "mean_class_confidence",
    "failure_rate_estimate",
    "empirical_coverage_interval",
]

"""Model weight (de)serialisation.

Weights are stored as a compressed ``.npz`` keyed by parameter name.
Only weights are persisted; architecture is re-created in code (the
reproduction's models are all constructed by named factory functions,
so this matches how the paper's TensorFlow checkpoints were used).
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn.network import Sequential


def save_model(model: Sequential, path: str | os.PathLike) -> None:
    """Save all parameter tensors of ``model`` to ``path`` (.npz)."""
    arrays = {}
    for param in model.parameters():
        if param.name in arrays:
            raise ValueError(f"duplicate parameter name {param.name!r}")
        arrays[param.name] = param.value
    np.savez_compressed(path, **arrays)


def load_model(model: Sequential, path: str | os.PathLike) -> Sequential:
    """Load weights saved by :func:`save_model` into ``model`` in place.

    The model architecture must match: every parameter name must be
    present with the same shape.
    """
    with np.load(path) as data:
        for param in model.parameters():
            if param.name not in data:
                raise KeyError(
                    f"checkpoint is missing parameter {param.name!r}"
                )
            stored = data[param.name]
            if stored.shape != param.value.shape:
                raise ValueError(
                    f"shape mismatch for {param.name!r}: checkpoint "
                    f"{stored.shape} vs model {param.value.shape}"
                )
            param.value = stored.astype(np.float32)
    return model

"""A small, from-scratch NumPy neural-network framework.

This package replaces the TensorFlow execution path used by the paper
(Doran & Veljanovska, DSN 2024).  It provides everything the paper's
experiments need:

* layers with explicit forward/backward passes (:mod:`repro.nn.layers`),
* losses (:mod:`repro.nn.losses`) and optimisers (:mod:`repro.nn.optim`),
* a :class:`~repro.nn.network.Sequential` container,
* a :class:`~repro.nn.trainer.Trainer` with *filter freezing* -- the
  paper's "pre-initialise a filter to Sobel and re-set it after every
  epoch or batch" workflow (Section III.B),
* model (de)serialisation (:mod:`repro.nn.serialize`).

The framework uses the NCHW (batch, channels, height, width) layout
throughout and float32 arithmetic by default, matching the conventions
of mainstream frameworks so that the reliable-execution layer in
:mod:`repro.reliable` can hook convolution arithmetic without surprises.
"""

from repro.nn.parameter import Parameter
from repro.nn.initializers import (
    constant_init,
    glorot_uniform,
    he_normal,
    zeros_init,
)
from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.network import Sequential
from repro.nn.optim import SGD, Adam, Momentum
from repro.nn.trainer import FilterPin, Trainer, TrainingHistory
from repro.nn.serialize import load_model, save_model

__all__ = [
    "Parameter",
    "constant_init",
    "glorot_uniform",
    "he_normal",
    "zeros_init",
    "Layer",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "LocalResponseNorm",
    "MaxPool2D",
    "ReLU",
    "Softmax",
    "CrossEntropyLoss",
    "MSELoss",
    "Sequential",
    "SGD",
    "Momentum",
    "Adam",
    "Trainer",
    "FilterPin",
    "TrainingHistory",
    "save_model",
    "load_model",
]

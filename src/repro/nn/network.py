"""Sequential network container."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.parameter import Parameter


class Sequential:
    """A feed-forward stack of layers.

    Besides plain forward/backward execution the container offers the
    access patterns the reproduction needs:

    * ``model[i]`` / ``model.layer(name)`` -- locate a layer so its
      filters can be replaced or executed reliably;
    * :meth:`forward_from` / :meth:`forward_until` -- split execution
      at a bifurcation point, which is how the hybrid architecture of
      the paper's Figure 2 shares early layers between the CNN and the
      dependable path;
    * :meth:`operation_counts` -- per-layer multiply-accumulate counts
      for the hybrid cost model.
    """

    def __init__(self, layers: Iterable[Layer], name: str = "model") -> None:
        self.layers: list[Layer] = list(layers)
        self.name = name
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate layer names in {name}: {names}")

    # -- execution ------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def forward_until(
        self, x: np.ndarray, stop: int, training: bool = False
    ) -> np.ndarray:
        """Run layers ``[0, stop)`` and return the intermediate tensor."""
        for layer in self.layers[:stop]:
            x = layer.forward(x, training=training)
        return x

    def forward_from(
        self, x: np.ndarray, start: int, training: bool = False
    ) -> np.ndarray:
        """Run layers ``[start, end)`` on an intermediate tensor."""
        for layer in self.layers[start:]:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    # -- layer access -----------------------------------------------------
    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def layer(self, name: str) -> Layer:
        """Look a layer up by name; raises ``KeyError`` if absent."""
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no layer named {name!r} in {self.name}")

    def index_of(self, name: str) -> int:
        for i, candidate in enumerate(self.layers):
            if candidate.name == name:
                return i
        raise KeyError(f"no layer named {name!r} in {self.name}")

    # -- parameters -------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def parameter_count(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- shape / cost introspection ----------------------------------------
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        shape = input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def shapes(self, input_shape: tuple[int, ...]) -> list[tuple[int, ...]]:
        """Input shape followed by the output shape of every layer."""
        result = [input_shape]
        shape = input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            result.append(shape)
        return result

    def operation_counts(self, input_shape: tuple[int, ...]) -> dict[str, int]:
        """Multiply-accumulate count per layer for one input image.

        Layers without arithmetic weight application (activations,
        pooling, reshape) count zero; they are not candidates for the
        paper's redundant execution.
        """
        counts: dict[str, int] = {}
        shape = input_shape
        for layer in self.layers:
            ops = getattr(layer, "operations_per_image", None)
            counts[layer.name] = int(ops(shape)) if ops else 0
            shape = layer.output_shape(shape)
        return counts

    def summary(self, input_shape: tuple[int, ...]) -> str:
        """Human-readable architecture table."""
        lines = [f"{self.name} ({self.parameter_count():,} parameters)"]
        shape = input_shape
        for layer in self.layers:
            out = layer.output_shape(shape)
            n_params = sum(p.size for p in layer.parameters())
            lines.append(
                f"  {layer.name:<16} {str(shape):>20} -> {str(out):<20}"
                f" params={n_params:,}"
            )
            shape = out
        return "\n".join(lines)

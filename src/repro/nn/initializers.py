"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so
that every experiment in the repository is reproducible from a seed.
"""

from __future__ import annotations

import numpy as np


def glorot_uniform(
    shape: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Uses ``limit = sqrt(6 / (fan_in + fan_out))``.  For convolution
    kernels shaped ``(out_channels, in_channels, kh, kw)`` the fans
    include the receptive-field size.
    """
    fan_in, fan_out = _fans(shape)
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal initialisation, suited to ReLU networks."""
    fan_in, _ = _fans(shape)
    std = float(np.sqrt(2.0 / fan_in))
    return (rng.standard_normal(size=shape) * std).astype(np.float32)


def zeros_init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zeros initialisation (biases)."""
    del rng  # deterministic; accepted for interface uniformity
    return np.zeros(shape, dtype=np.float32)


def constant_init(value: float):
    """Return an initialiser that fills with ``value``."""

    def _init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        del rng
        return np.full(shape, value, dtype=np.float32)

    return _init


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolution shapes."""
    if len(shape) == 2:  # dense: (in, out)
        return shape[0], shape[1]
    if len(shape) == 4:  # conv: (out_c, in_c, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    if len(shape) == 1:
        return shape[0], shape[0]
    raise ValueError(f"unsupported parameter shape {shape!r}")

"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.activations import softmax


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    Operates on *logits* (fused softmax) for numerical stability; the
    network's trailing :class:`~repro.nn.layers.Softmax` layer should
    be omitted during training or the logits passed directly.
    """

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise ValueError(f"expected (n, classes) logits, got {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ValueError("labels must be one integer per sample")
        probs = softmax(logits)
        self._probs = probs
        self._labels = labels
        picked = probs[np.arange(len(labels)), labels]
        return float(-np.log(np.clip(picked, 1e-12, None)).mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        grad = self._probs.copy()
        grad[np.arange(len(self._labels)), self._labels] -= 1.0
        return grad / len(self._labels)


class MSELoss:
    """Mean squared error over arbitrary-shape targets."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred = np.asarray(pred, dtype=np.float32)
        target = np.asarray(target, dtype=np.float32)
        if pred.shape != target.shape:
            raise ValueError(
                f"shape mismatch: {pred.shape} vs {target.shape}"
            )
        self._diff = pred - target
        return float((self._diff**2).mean())

    def backward(self) -> np.ndarray:
        return (2.0 / self._diff.size) * self._diff

"""Training loop with the paper's filter-pinning workflow.

Section III.B of the paper pre-initialises one first-layer filter to a
Sobel stack and "freezes" it during training.  The authors observe that
TensorFlow's freezing still lets the filter drift minimally after every
epoch or batch, so they re-set the filter values instead.  That exact
mechanism is :class:`FilterPin`: it records a target kernel for one
filter of a convolution layer and re-writes it after every batch or
epoch, while optionally measuring how far the filter had drifted before
the re-set (the paper's "subtle changes in the intensity, statistical
and spatial frequency domains").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers.conv import Conv2D
from repro.nn.losses import CrossEntropyLoss
from repro.nn.network import Sequential
from repro.nn.optim import Optimizer


@dataclass
class TrainingHistory:
    """Per-epoch training curves."""

    loss: list[float] = field(default_factory=list)
    accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.loss)


class FilterPin:
    """Pin one convolution filter to a fixed kernel during training.

    Parameters
    ----------
    layer:
        The convolution layer owning the filter.
    index:
        Filter index within ``layer`` (first axis of the weight).
    kernel:
        Target kernel ``(in_channels, kh, kw)``; typically the Sobel
        stack from :func:`repro.vision.filters.sobel_filter_stack`.
    reset_every:
        ``"batch"`` (paper default) or ``"epoch"``.
    """

    def __init__(
        self,
        layer: Conv2D,
        index: int,
        kernel: np.ndarray,
        reset_every: str = "batch",
    ) -> None:
        if reset_every not in ("batch", "epoch"):
            raise ValueError("reset_every must be 'batch' or 'epoch'")
        self.layer = layer
        self.index = index
        self.kernel = np.asarray(kernel, dtype=np.float32).copy()
        self.reset_every = reset_every
        self.drift_history: list[float] = []
        layer.set_filter(index, self.kernel)

    def measure_drift(self) -> float:
        """L2 distance between the live filter and the pinned kernel."""
        live = self.layer.get_filter(self.index)
        return float(np.linalg.norm(live - self.kernel))

    def reset(self) -> None:
        """Record drift, then re-write the pinned kernel."""
        self.drift_history.append(self.measure_drift())
        self.layer.set_filter(self.index, self.kernel)

    # repro: allow[PARITY-ORPHAN] -- a training-loop hook, not a
    # vectorized/scalar parity pair; pin-reset behaviour is covered
    # through Trainer.fit by tests/nn/test_network_trainer.py.
    def after_batch(self) -> None:
        if self.reset_every == "batch":
            self.reset()

    def after_epoch(self) -> None:
        if self.reset_every == "epoch":
            self.reset()


class Trainer:
    """Mini-batch trainer for :class:`~repro.nn.network.Sequential`.

    The model passed in should end in logits (no Softmax); the trainer
    applies fused softmax cross-entropy.
    """

    def __init__(
        self,
        model: Sequential,
        optimizer: Optimizer,
        loss: CrossEntropyLoss | None = None,
        pins: list[FilterPin] | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss = loss or CrossEntropyLoss()
        self.pins = list(pins or [])
        self.rng = rng or np.random.default_rng(0)

    # repro: allow[PARITY-ORPHAN] -- one optimisation step, not a
    # vectorized/scalar parity pair; step-level bitwise determinism
    # is pinned by tests/nn/test_optim_determinism.py and the full
    # loop by tests/nn/test_network_trainer.py.
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One optimisation step; returns the batch loss."""
        self.model.zero_grad()
        logits = self.model.forward(x, training=True)
        value = self.loss.forward(logits, y)
        self.model.backward(self.loss.backward())
        self.optimizer.step()
        for pin in self.pins:
            pin.after_batch()
        return value

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        batch_size: int = 32,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
        shuffle: bool = True,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over ``(x, y)``."""
        n = len(x)
        if n == 0:
            raise ValueError("empty training set")
        history = TrainingHistory()
        for epoch in range(epochs):
            order = (
                self.rng.permutation(n) if shuffle else np.arange(n)
            )
            losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                losses.append(self.train_batch(x[idx], y[idx]))
            for pin in self.pins:
                pin.after_epoch()
            history.loss.append(float(np.mean(losses)))
            history.accuracy.append(self.evaluate(x, y, batch_size))
            if validation is not None:
                history.val_accuracy.append(
                    self.evaluate(*validation, batch_size)
                )
            if verbose:  # pragma: no cover - logging only
                msg = (
                    f"epoch {epoch + 1}/{epochs} "
                    f"loss={history.loss[-1]:.4f} "
                    f"acc={history.accuracy[-1]:.3f}"
                )
                if validation is not None:
                    msg += f" val_acc={history.val_accuracy[-1]:.3f}"
                print(msg)
        return history

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 64
    ) -> float:
        """Classification accuracy in inference mode."""
        correct = 0
        for start in range(0, len(x), batch_size):
            logits = self.model.forward(x[start : start + batch_size])
            correct += int(
                (logits.argmax(axis=1) == y[start : start + batch_size]).sum()
            )
        return correct / len(x)

"""Optimisers.

Each optimiser updates a list of :class:`~repro.nn.parameter.Parameter`
in place, honouring the ``frozen`` flag.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter


class Optimizer:
    """Base optimiser."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        for slot, param in enumerate(self.params):
            if param.frozen:
                continue
            self._update(param, slot)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def _update(self, param: Parameter, slot: int) -> None:
        """Apply one update; ``slot`` is the parameter's position in
        ``self.params``, the key for any per-parameter state (state
        keyed by ``id()`` leaks heap addresses into compute state --
        the lint AMBIENT-ID hazard)."""
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent with optional weight decay."""

    def __init__(
        self, params: list[Parameter], lr: float = 0.01, weight_decay: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        self.weight_decay = weight_decay

    def _update(self, param: Parameter, slot: int) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.value
        param.value -= self.lr * grad


class Momentum(Optimizer):
    """SGD with classical momentum (AlexNet's original optimiser)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def _update(self, param: Parameter, slot: int) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.value
        vel = self._velocity[slot]
        vel *= self.momentum
        vel -= self.lr * grad
        param.value += vel


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        super().step()

    def _update(self, param: Parameter, slot: int) -> None:
        m = self._m[slot]
        v = self._v[slot]
        m *= self.beta1
        m += (1.0 - self.beta1) * param.grad
        v *= self.beta2
        v += (1.0 - self.beta2) * param.grad**2
        m_hat = m / (1.0 - self.beta1**self._t)
        v_hat = v / (1.0 - self.beta2**self._t)
        param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

"""Trainable parameters with gradient storage and freeze support."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor with its gradient.

    Attributes
    ----------
    value:
        The parameter tensor (float32 ndarray).
    grad:
        Accumulated gradient of the loss w.r.t. ``value``; same shape.
    name:
        Human-readable identifier, e.g. ``"conv1/weight"``.
    frozen:
        When True, optimisers skip the update for this parameter.
        Freezing an entire parameter is coarse; for the paper's
        per-filter pinning use :class:`repro.nn.trainer.FilterPin`,
        which re-writes a slice after each update (mirroring the
        observed TensorFlow behaviour where a "frozen" filter still
        drifts unless explicitly re-set).
    """

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)
        self.name = name
        self.frozen = False

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero in place."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = ", frozen" if self.frozen else ""
        return f"Parameter({self.name}, shape={self.value.shape}{state})"

"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform, zeros_init
from repro.nn.layers.base import Layer


class Dense(Layer):
    """Affine layer ``y = x W + b`` over 2-D inputs ``(n, in_features)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self._register(
            glorot_uniform((in_features, out_features), rng), "weight"
        )
        self.bias = self._register(zeros_init((out_features,), rng), "bias")
        self._cache: np.ndarray | None = None
        #: When True, inference uses the per-sample stacked matmul so
        #: a sample's output is bitwise independent of its batch (the
        #: hybrid pipeline's batched-parity contract; see
        #: :mod:`repro.core.hybrid`, which sets this on its model).
        #: Off by default: training, calibration and campaigns keep
        #: the blocked GEMM.
        self.batch_invariant = False

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected (n, {self.in_features}), got {x.shape}"
            )
        if training:
            self._cache = x
        if training or not self.batch_invariant:
            # One blocked GEMM: throughput, no invariance promise.
            return x @ self.weight.value + self.bias.value
        # Batch-invariant inference: stacked per-sample matmul instead
        # of one (n, d) @ (d, m) GEMM.  Every sample goes through an
        # identically-shaped (1, d) @ (d, m) product, so the result
        # for a given input row is bitwise independent of the batch
        # size.  BLAS dispatches different kernels for different GEMM
        # shapes, which is what makes the naive batched product differ
        # in the last bits from single-sample inference -- and the
        # hybrid pipeline's batched path promises exact agreement with
        # per-image inference.
        return (x[:, None, :] @ self.weight.value)[:, 0, :] + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                f"{self.name}: backward called before forward(training=True)"
            )
        x = self._cache
        self.weight.grad += x.T @ grad
        self.bias.grad += grad.sum(axis=0)
        self._cache = None
        return grad @ self.weight.value.T

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        (features,) = input_shape
        if features != self.in_features:
            raise ValueError(f"{self.name}: feature mismatch ({features})")
        return (self.out_features,)

    def operations_per_image(self, input_shape: tuple[int, ...]) -> int:
        """Scalar multiply-accumulates for one input vector."""
        del input_shape
        return self.in_features * self.out_features

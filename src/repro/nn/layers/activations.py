"""Activation layers: ReLU and Softmax."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Element-wise rectified linear unit."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name=name)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(
                f"{self.name}: backward called before forward(training=True)"
            )
        out = grad * self._mask
        self._mask = None
        return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class Softmax(Layer):
    """Softmax over the last axis.

    Usually fused with cross-entropy during training (see
    :class:`repro.nn.losses.CrossEntropyLoss`); kept as a layer so that
    inference-time class confidences -- the quantity plotted in the
    paper's Figure 4 -- are part of the network output.
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name=name)
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = softmax(x)
        if training:
            self._out = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError(
                f"{self.name}: backward called before forward(training=True)"
            )
        s = self._out
        self._out = None
        dot = (grad * s).sum(axis=-1, keepdims=True)
        return s * (grad - dot)

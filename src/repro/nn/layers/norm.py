"""Local response normalisation (AlexNet-style)."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class LocalResponseNorm(Layer):
    """Cross-channel local response normalisation.

    ``b[i] = a[i] / (k + alpha/n * sum_{j in window(i)} a[j]^2) ** beta``
    with the AlexNet defaults ``n=5, k=2, alpha=1e-4, beta=0.75``.
    """

    def __init__(
        self,
        size: int = 5,
        k: float = 2.0,
        alpha: float = 1e-4,
        beta: float = 0.75,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if size <= 0 or size % 2 == 0:
            raise ValueError("size must be a positive odd integer")
        self.size = size
        self.k = k
        self.alpha = alpha
        self.beta = beta
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def _window_sums(self, squares: np.ndarray) -> np.ndarray:
        """Sliding cross-channel sum of squares with edge clamping."""
        c = squares.shape[1]
        half = self.size // 2
        padded = np.pad(squares, ((0, 0), (half, half), (0, 0), (0, 0)))
        csum = np.cumsum(padded, axis=1)
        csum = np.concatenate(
            [np.zeros_like(csum[:, :1]), csum], axis=1
        )
        # window over padded channels [i, i+size) maps to original i-half..
        return csum[:, self.size :] - csum[:, :c]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        sums = self._window_sums(x * x)
        denom = self.k + (self.alpha / self.size) * sums
        out = x / (denom**self.beta)
        if training:
            self._cache = (x, denom)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                f"{self.name}: backward called before forward(training=True)"
            )
        x, denom = self._cache
        self._cache = None
        # d(out_i)/d(x_j): direct term for i == j plus the cross-channel
        # coupling through the shared window sum.
        dpow = denom ** (-self.beta)
        direct = grad * dpow
        coupling = grad * x * (-self.beta) * denom ** (-self.beta - 1.0)
        coupling *= 2.0 * (self.alpha / self.size)
        # Each x_j appears in the windows of channels j-half..j+half, so
        # the coupling term is itself a sliding window sum over channels.
        summed = self._window_sums_backward(coupling)
        return direct + x * summed

    def _window_sums_backward(self, values: np.ndarray) -> np.ndarray:
        """Distribute coupling terms back over their windows."""
        # Symmetric window: the scatter is the same sliding-sum pattern.
        return self._window_sums(values)

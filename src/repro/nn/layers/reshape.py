"""Shape-adapting layers."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class Flatten(Layer):
    """Flatten all non-batch axes into one feature axis."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name=name)
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError(
                f"{self.name}: backward called before forward(training=True)"
            )
        shape = self._input_shape
        self._input_shape = None
        return grad.reshape(shape)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(input_shape)),)

"""2-D convolution layer (NCHW, im2col based).

The forward pass exposes its arithmetic in two forms:

* :meth:`Conv2D.forward` -- vectorised im2col/GEMM path used for
  training and fast inference ("native execution" in the paper's
  Table 1 terminology);
* :func:`conv2d_patches` / :meth:`Conv2D.input_patches` -- the patch
  view that :mod:`repro.reliable` iterates over to run the paper's
  Algorithm 3 one multiply-accumulate at a time.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform, zeros_init
from repro.nn.layers.base import Layer


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size: "
            f"size={size} kernel={kernel} stride={stride} padding={padding}"
        )
    return out


def pad_nchw(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial axes of an NCHW tensor."""
    if padding == 0:
        return x
    return np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
    )


def im2col(
    x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int
) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(n, c, h, w)``.
    kernel:
        ``(kh, kw)`` receptive-field size.
    stride, padding:
        Convolution geometry.

    Returns
    -------
    Array of shape ``(n, out_h, out_w, c * kh * kw)`` whose last axis
    holds one flattened receptive field.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    xp = pad_nchw(x, padding)
    # Strided sliding-window view: (n, c, out_h, out_w, kh, kw).
    sn, sc, sh, sw = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # -> (n, out_h, out_w, c, kh, kw) -> flatten the receptive field.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n, out_h, out_w, c * kh * kw
    )
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to an image.

    Used by the convolution backward pass to accumulate input
    gradients from patch gradients.

    Vectorized as ``kh * kw`` strided slice-adds (one whole-batch add
    per kernel offset) instead of an ``out_h * out_w`` Python loop.
    Iterating offsets in *descending* order keeps the result bitwise
    identical to the historical patch-by-patch loop: a padded pixel
    ``p`` receives one contribution per (patch, offset) pair with
    ``patch * stride + offset = p``, so ascending patch order -- the
    loop's accumulation order -- is exactly descending offset order,
    and within one offset the contributing patches write disjoint
    pixels.
    """
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    xp = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    patches = cols.reshape(n, out_h, out_w, c, kh, kw)
    for u in range(kh - 1, -1, -1):
        for v in range(kw - 1, -1, -1):
            xp[
                :, :,
                u : u + stride * out_h : stride,
                v : v + stride * out_w : stride,
            ] += patches[:, :, :, :, u, v].transpose(0, 3, 1, 2)
    if padding:
        return xp[:, :, padding:-padding, padding:-padding]
    return xp


class Conv2D(Layer):
    """2-D convolution over NCHW inputs.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.  Weights are shaped
        ``(out_channels, in_channels, kh, kw)`` -- the layout the
        paper's per-filter experiments (replace filter *i* with Sobel)
        index directly.
    kernel_size:
        Receptive-field side length (square kernels, like AlexNet's).
    stride, padding:
        Convolution geometry.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = rng or np.random.default_rng(0)
        wshape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = self._register(glorot_uniform(wshape, rng), "weight")
        self.bias = self._register(zeros_init((out_channels,), rng), "bias")
        self._cache: tuple[np.ndarray, tuple[int, int, int, int]] | None = None

    # -- forward/backward ----------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (n, {self.in_channels}, h, w), "
                f"got {x.shape}"
            )
        k = (self.kernel_size, self.kernel_size)
        cols = im2col(x, k, self.stride, self.padding)
        n, out_h, out_w, _ = cols.shape
        wmat = self.weight.value.reshape(self.out_channels, -1)
        out = cols @ wmat.T + self.bias.value
        if training:
            self._cache = (cols, x.shape)
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                f"{self.name}: backward called before forward(training=True)"
            )
        cols, input_shape = self._cache
        # grad: (n, out_c, out_h, out_w) -> (n, out_h, out_w, out_c)
        g = grad.transpose(0, 2, 3, 1)
        flat_g = g.reshape(-1, self.out_channels)
        flat_cols = cols.reshape(-1, cols.shape[-1])
        self.weight.grad += (flat_g.T @ flat_cols).reshape(
            self.weight.value.shape
        )
        self.bias.grad += flat_g.sum(axis=0)
        wmat = self.weight.value.reshape(self.out_channels, -1)
        grad_cols = (flat_g @ wmat).reshape(cols.shape)
        k = (self.kernel_size, self.kernel_size)
        self._cache = None
        return col2im(grad_cols, input_shape, k, self.stride, self.padding)

    # -- geometry & reliable-execution hooks -----------------------------
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(f"{self.name}: channel mismatch ({c})")
        out_h = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def input_patches(self, x: np.ndarray) -> np.ndarray:
        """Patch view ``(n, out_h, out_w, c*kh*kw)`` for reliable kernels.

        The reliable convolution (paper Algorithm 3) walks this array
        one receptive field at a time, performing each multiply and
        accumulate through qualified operators.
        """
        k = (self.kernel_size, self.kernel_size)
        return im2col(
            np.asarray(x, dtype=np.float32), k, self.stride, self.padding
        )

    def set_filter(self, index: int, kernel: np.ndarray) -> None:
        """Overwrite filter ``index`` with ``kernel`` (paper Section III.B).

        ``kernel`` must be shaped ``(in_channels, kh, kw)``.
        """
        expected = self.weight.value.shape[1:]
        kernel = np.asarray(kernel, dtype=np.float32)
        if kernel.shape != expected:
            raise ValueError(
                f"filter shape {kernel.shape} != expected {expected}"
            )
        self.weight.value[index] = kernel

    def get_filter(self, index: int) -> np.ndarray:
        """Return a copy of filter ``index`` ``(in_channels, kh, kw)``."""
        return self.weight.value[index].copy()

    def operations_per_image(self, input_shape: tuple[int, ...]) -> int:
        """Number of scalar multiply-accumulates for one input image.

        Used by the hybrid cost model (DESIGN.md experiment E8).
        """
        out_c, out_h, out_w = self.output_shape(input_shape)
        per_output = self.in_channels * self.kernel_size * self.kernel_size
        return out_c * out_h * out_w * per_output

"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class Dropout(Layer):
    """Inverted dropout: active only when ``training=True``.

    Scaling happens at training time so inference is a plain identity,
    which keeps the reliable-execution path (inference only) free of
    stochastic behaviour.
    """

    def __init__(
        self,
        rate: float = 0.5,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        self._mask = (
            self.rng.random(x.shape) < keep
        ).astype(np.float32) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            # forward ran in inference mode; dropout was identity
            return grad
        out = grad * self._mask
        self._mask = None
        return out

"""Max pooling."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.layers.conv import conv_output_size


class MaxPool2D(Layer):
    """Max pooling over NCHW inputs.

    AlexNet uses overlapping 3x3/stride-2 pooling; both overlapping
    and non-overlapping geometries are supported.
    """

    def __init__(
        self, pool_size: int, stride: int | None = None, name: str | None = None
    ) -> None:
        super().__init__(name=name)
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self.stride = stride or pool_size
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        n, c, h, w = x.shape
        k, s = self.pool_size, self.stride
        out_h = conv_output_size(h, k, s, 0)
        out_w = conv_output_size(w, k, s, 0)
        if not training:
            # Inference needs no argmax: fold ``maximum`` over the k*k
            # window taps without materialising the window array.  The
            # taps are visited in the window's row-major order, the
            # exact element sequence ``maximum.reduce`` walks over the
            # flattened window axis below, so the fold is bitwise
            # identical to the training path's ``max`` (``maximum`` is
            # an exact comparison -- no rounding -- and NaN/signed-zero
            # propagation follows the same left-to-right order).
            out = None
            for i in range(k):
                for j in range(k):
                    tap = x[:, :, i : i + s * out_h : s, j : j + s * out_w : s]
                    if out is None:
                        out = np.array(tap)
                    else:
                        np.maximum(out, tap, out=out)
            return out
        sn, sc, sh, sw = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, out_h, out_w, k, k),
            strides=(sn, sc, sh * s, sw * s, sh, sw),
            writeable=False,
        )
        flat = windows.reshape(n, c, out_h, out_w, k * k)
        out = flat.max(axis=-1)
        argmax = flat.argmax(axis=-1)
        self._cache = (x.shape, argmax)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                f"{self.name}: backward called before forward(training=True)"
            )
        input_shape, argmax = self._cache
        self._cache = None
        n, c, h, w = input_shape
        k, s = self.pool_size, self.stride
        out_h, out_w = grad.shape[2], grad.shape[3]
        dx = np.zeros(input_shape, dtype=np.float32)
        # Scatter each output gradient to the argmax position of its
        # window.  Overlapping windows accumulate, matching autodiff.
        rows_in_window, cols_in_window = np.divmod(argmax, k)
        oi = np.arange(out_h)[None, None, :, None]
        oj = np.arange(out_w)[None, None, None, :]
        hi = oi * s + rows_in_window
        wj = oj * s + cols_in_window
        ni = np.arange(n)[:, None, None, None]
        ci = np.arange(c)[None, :, None, None]
        np.add.at(dx, (ni, ci, hi, wj), grad)
        return dx

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size, self.stride, 0)
        out_w = conv_output_size(w, self.pool_size, self.stride, 0)
        return (c, out_h, out_w)

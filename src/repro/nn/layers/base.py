"""Layer base class."""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter


class Layer:
    """Base class for all layers.

    A layer is a differentiable function of one input tensor.  Sub-
    classes implement :meth:`forward` and :meth:`backward`; layers with
    weights register them via :meth:`_register`.

    The contract mirrors classic define-by-run frameworks:

    * ``forward(x, training)`` caches whatever the backward pass needs.
    * ``backward(grad)`` consumes that cache, accumulates parameter
      gradients into ``Parameter.grad`` and returns the gradient with
      respect to the layer input.
    """

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__.lower()
        self._params: list[Parameter] = []

    # -- interface ----------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape of the output given an input shape (without batch dim)."""
        return input_shape

    # -- parameter handling -------------------------------------------
    def _register(self, value: np.ndarray, suffix: str) -> Parameter:
        param = Parameter(value, name=f"{self.name}/{suffix}")
        self._params.append(param)
        return param

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this layer."""
        return list(self._params)

    def zero_grad(self) -> None:
        for param in self._params:
            param.zero_grad()

    # -- convenience ----------------------------------------------------
    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

"""Neural-network layers with explicit forward/backward passes."""

from repro.nn.layers.base import Layer
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.activations import ReLU, Softmax
from repro.nn.layers.pooling import MaxPool2D
from repro.nn.layers.reshape import Flatten
from repro.nn.layers.norm import LocalResponseNorm
from repro.nn.layers.dropout import Dropout

__all__ = [
    "Layer",
    "Conv2D",
    "Dense",
    "ReLU",
    "Softmax",
    "MaxPool2D",
    "Flatten",
    "LocalResponseNorm",
    "Dropout",
]

"""Qualified values: a result plus its correctness assertion.

The paper's basic operators "return a value ... [and] a qualifier
indicating whether the operation was carried out correctly or not".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QualifiedValue:
    """A computation result and whether it is asserted correct.

    Attributes
    ----------
    value:
        The numeric result.  When ``ok`` is False the value is
        whatever the failed execution produced and must not be used
        (Algorithm 3 "assumes that every operation fails unless
        explicitly asserted otherwise").
    ok:
        The qualifier.  True means the executing operator asserts the
        result is correct (e.g. redundant executions agreed).
    """

    value: float
    ok: bool

    def __bool__(self) -> bool:
        """Truthiness is the qualifier, enabling ``if result:``."""
        return self.ok

    def unwrap(self) -> float:
        """Return ``value``, raising if the qualifier is False."""
        if not self.ok:
            raise ValueError("unwrap() on an unqualified value")
        return self.value

    @staticmethod
    def combine(a: "QualifiedValue", b: "QualifiedValue", value: float
                ) -> "QualifiedValue":
        """Combine two qualified inputs into a derived result.

        The derived value is qualified only when both inputs were.
        """
        return QualifiedValue(value, a.ok and b.ok)

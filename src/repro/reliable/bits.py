"""Word views of floating-point results.

Hardware checkers compare *storage words*, not numeric values: a DMR
comparator XORs two 64-bit registers and a TMR voter majority-gates
them bit by bit.  Comparing with float ``==`` diverges from that model
in exactly two places:

* ``NaN == NaN`` is False, so a true-NaN result (e.g. ``inf - inf``)
  produced identically by every redundant execution would *never*
  qualify -- an infinite rollback loop ending in bucket overflow;
* ``+0.0 == -0.0`` is True, so a sign-bit upset on a zero result would
  be silently qualified.

Every qualifier comparison in :mod:`repro.reliable` therefore goes
through these helpers: identical words agree (including identical NaN
payloads), different words disagree (including ``+0.0`` vs ``-0.0``).
"""

from __future__ import annotations

import struct

import numpy as np

#: dtype of the word view used for array-level comparison/voting.
WORD_DTYPE = np.int64


def float_word(value: float) -> int:
    """The IEEE-754 binary64 storage word behind a Python float.

    ``struct`` rather than NumPy scalar round-trips: this runs once or
    twice per qualified operation on the scalar hot path.
    """
    return struct.unpack("<q", struct.pack("<d", value))[0]


def same_word(a: float, b: float) -> bool:
    """Bit-for-bit equality of two float64 storage words.

    The software model of a hardware word comparator: NaNs with the
    same payload agree, ``+0.0``/``-0.0`` disagree.
    """
    return struct.pack("<d", a) == struct.pack("<d", b)


def word_view(array: np.ndarray) -> np.ndarray:
    """:data:`WORD_DTYPE` view of a float64 array (no copy when
    contiguous) -- the array form of :func:`float_word`."""
    return np.ascontiguousarray(array, dtype=np.float64).view(WORD_DTYPE)

"""Majority voting for redundant execution."""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.reliable.bits import float_word


def majority_vote(results: Sequence[float]) -> tuple[float, int]:
    """Return ``(winner, agreement)`` over redundant results.

    ``winner`` is the most common value (exact bit-for-bit equality,
    as hardware voters compare words, not tolerances); ``agreement``
    is how many executions produced it.  Ties are broken in favour of
    the earliest-produced value, which keeps the voter deterministic.

    Votes are counted on 64-bit storage words (:func:`float_word`),
    matching the hardware model the docstring above promises: NaN
    results with identical payloads vote together (``Counter`` over
    raw floats would split them by object identity, since
    ``NaN != NaN``) and ``+0.0`` / ``-0.0`` vote apart (float equality
    would merge them despite differing sign words).
    """
    if not results:
        raise ValueError("majority_vote needs at least one result")
    words = [float_word(value) for value in results]
    counts = Counter(words)
    best_count = max(counts.values())
    for value, word in zip(results, words):  # earliest-first tie break
        if counts[word] == best_count:
            return value, best_count
    raise AssertionError("unreachable")  # pragma: no cover

"""Majority voting for redundant execution."""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence


def majority_vote(results: Sequence[float]) -> tuple[float, int]:
    """Return ``(winner, agreement)`` over redundant results.

    ``winner`` is the most common value (exact bit-for-bit equality,
    as hardware voters compare words, not tolerances); ``agreement``
    is how many executions produced it.  Ties are broken in favour of
    the earliest-produced value, which keeps the voter deterministic.
    """
    if not results:
        raise ValueError("majority_vote needs at least one result")
    counts = Counter(results)
    best_count = max(counts.values())
    for candidate in results:  # earliest-first tie break
        if counts[candidate] == best_count:
            return candidate, best_count
    raise AssertionError("unreachable")  # pragma: no cover

"""Reliable execution substrate.

Implements the paper's Section IV machinery:

* **Algorithm 1** -- :class:`~repro.reliable.operators.PlainOperator`:
  single execution, qualifier always True (baseline).
* **Algorithm 2** -- :class:`~repro.reliable.operators.RedundantOperator`:
  dual execution with comparison (DMR); qualifier is the agreement of
  the two results.
* **TMR** -- :class:`~repro.reliable.operators.TMROperator`: triple
  execution with majority voting, the paper's "agreed upon by execution
  of the algorithm three times and voting on the result".
* **Algorithm 3** -- :func:`~repro.reliable.convolution.reliable_convolution`:
  a convolution whose every multiply and accumulate is checkpointed;
  a failed operation rolls back (re-executes) and errors feed a
  **leaky-bucket** counter (:class:`~repro.reliable.leaky_bucket.LeakyBucket`)
  whose ceiling turns repeated errors into an explicit
  :class:`~repro.reliable.errors.PersistentFailureError`.

Higher-level pieces: :class:`~repro.reliable.executor.ReliableConv2D`
runs any :class:`repro.nn.layers.Conv2D` through the reliable kernel
and produces an :class:`~repro.reliable.executor.ExecutionReport`;
:mod:`~repro.reliable.checkpoint` generalises checkpoint/rollback to
arbitrary segments (for the rollback-distance ablation);
:mod:`~repro.reliable.lockstep` models the Section II.A lockstep pair.
"""

from repro.reliable.qualified import QualifiedValue
from repro.reliable.bits import float_word, same_word, word_view
from repro.reliable.errors import (
    LockstepMismatchError,
    PersistentFailureError,
    ReliabilityError,
)
from repro.reliable.execution_unit import (
    ArrayExecutionUnit,
    ExecutionUnit,
    Float32ArrayUnit,
    Float32ExecutionUnit,
    Float64ArrayUnit,
    PerfectExecutionUnit,
    as_array_unit,
)
from repro.reliable.operators import (
    Operator,
    PlainOperator,
    RedundantOperator,
    TMROperator,
    make_operator,
    operator_kind_of,
)
from repro.reliable.leaky_bucket import LeakyBucket
from repro.reliable.voting import majority_vote
from repro.reliable.convolution import (
    ConvolutionStats,
    reliable_convolution,
    reliable_dot,
)
from repro.reliable.checkpoint import CheckpointedSegment, RollbackPolicy
from repro.reliable.lockstep import LockstepPair
from repro.reliable.fixed_point import (
    Q7_8,
    Q15_16,
    FixedPointExecutionUnit,
    QFormat,
)
from repro.reliable.spatial import (
    ArrayExhaustedError,
    PEArray,
    SpatialRedundantOperator,
)
from repro.reliable.ecc import (
    DecodeReport,
    ECCProtectedTensor,
    decode_words,
    encode_words,
)
from repro.reliable.executor import (
    ExecutionReport,
    ReliableConv2D,
    engine_names,
    redundant_layer_forward,
    register_engine,
)
from repro.reliable.vectorized import (
    can_speculate,
    speculation_is_exact,
    speculative_forward,
    vectorized_reliable_convolution,
)

__all__ = [
    "QualifiedValue",
    "float_word",
    "same_word",
    "word_view",
    "ReliabilityError",
    "PersistentFailureError",
    "LockstepMismatchError",
    "ExecutionUnit",
    "PerfectExecutionUnit",
    "Float32ExecutionUnit",
    "ArrayExecutionUnit",
    "Float64ArrayUnit",
    "Float32ArrayUnit",
    "as_array_unit",
    "Operator",
    "PlainOperator",
    "RedundantOperator",
    "TMROperator",
    "make_operator",
    "operator_kind_of",
    "LeakyBucket",
    "majority_vote",
    "reliable_convolution",
    "reliable_dot",
    "ConvolutionStats",
    "CheckpointedSegment",
    "RollbackPolicy",
    "LockstepPair",
    "ReliableConv2D",
    "ExecutionReport",
    "redundant_layer_forward",
    "register_engine",
    "engine_names",
    "speculative_forward",
    "vectorized_reliable_convolution",
    "can_speculate",
    "speculation_is_exact",
    "QFormat",
    "Q7_8",
    "Q15_16",
    "FixedPointExecutionUnit",
    "PEArray",
    "SpatialRedundantOperator",
    "ArrayExhaustedError",
    "ECCProtectedTensor",
    "DecodeReport",
    "encode_words",
    "decode_words",
]

"""Execution units: where arithmetic physically happens.

The paper targets FPGA arithmetic blocks; here an *execution unit* is
the software model of one processing element.  Redundant operators
call the unit several times and compare -- the unit is the fault
boundary, so fault injection (:mod:`repro.faults`) wraps or replaces
the unit, never the operators, mirroring how single-event upsets hit
the PE rather than the checking logic.
"""

from __future__ import annotations

import numpy as np


class ExecutionUnit:
    """Interface of a scalar arithmetic unit."""

    def multiply(self, a: float, b: float) -> float:
        raise NotImplementedError

    def add(self, a: float, b: float) -> float:
        raise NotImplementedError


class PerfectExecutionUnit(ExecutionUnit):
    """A fault-free unit: plain (double-precision) IEEE-754 arithmetic."""

    def multiply(self, a: float, b: float) -> float:
        return a * b

    def add(self, a: float, b: float) -> float:
        return a + b


class Float32ExecutionUnit(ExecutionUnit):
    """A fault-free unit with bit-exact 32-bit arithmetic.

    Models the single-precision datapath of the paper's FPGA target:
    operands and results are rounded to IEEE-754 binary32, so the
    values redundant executions compare are exactly the words a
    hardware comparator would see.  Slower than
    :class:`PerfectExecutionUnit` (NumPy scalar round-trips); used
    where hardware fidelity matters, e.g. the Table 1 measurement.
    """

    def multiply(self, a: float, b: float) -> float:
        return float(np.float32(a) * np.float32(b))

    def add(self, a: float, b: float) -> float:
        return float(np.float32(a) + np.float32(b))


# ---------------------------------------------------------------------------
# Array execution units (the vectorized engine's arithmetic substrate)
# ---------------------------------------------------------------------------


class ArrayExecutionUnit:
    """Elementwise array counterpart of an :class:`ExecutionUnit`.

    The speculate-then-verify engine
    (:mod:`repro.reliable.vectorized`) runs a whole layer as NumPy
    array operations; an array unit supplies that arithmetic with the
    *same per-element results, bit for bit,* as its scalar twin would
    produce one operation at a time.  Inputs and outputs are float64
    arrays (broadcasting allowed) whose elements are exactly the
    values the scalar unit would pass around as Python floats.

    ``deterministic`` declares that repeated executions of the same
    operation return identical words -- the property that makes
    speculation *exact*: all redundant passes agree everywhere, so the
    engine's output is provably bitwise identical to the scalar
    Algorithm 3 path.  Fault-injecting units set it False (or derive
    it from their fault model) and the ``"auto"`` engine policy then
    keeps the scalar path.

    ``out`` is an optional float64 scratch buffer the caller permits
    the unit to write the result into (it may alias ``a``).  A unit is
    free to ignore it -- callers must always consume the *returned*
    array, never assume ``out`` was filled.  Elementwise IEEE-754
    arithmetic is value-identical regardless of output placement, so
    honouring ``out`` never changes a single stored word; it only
    spares the allocation that otherwise dominates large-batch passes.
    """

    deterministic: bool = False

    def multiply(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        raise NotImplementedError

    def add(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        raise NotImplementedError


class Float64ArrayUnit(ArrayExecutionUnit):
    """Array twin of :class:`PerfectExecutionUnit`: IEEE-754 binary64
    arithmetic, elementwise."""

    deterministic = True

    def multiply(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        return np.multiply(a, b, out=out)

    def add(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        return np.add(a, b, out=out)


class Float32ArrayUnit(ArrayExecutionUnit):
    """Array twin of :class:`Float32ExecutionUnit`.

    Operands round to binary32, the operation runs in binary32, and
    the result widens back to binary64 -- the same
    round/compute/widen chain as the scalar unit, so every element
    matches ``float(np.float32(a) <op> np.float32(b))`` bit for bit.
    The ``out`` scratch hint is ignored (the intermediate lives in
    binary32, so there is no float64 temporary to save).
    """

    deterministic = True

    def multiply(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        del out
        return (
            np.asarray(a, dtype=np.float32) * np.asarray(b, dtype=np.float32)
        ).astype(np.float64)

    def add(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        del out
        return (
            np.asarray(a, dtype=np.float32) + np.asarray(b, dtype=np.float32)
        ).astype(np.float64)


def as_array_unit(unit: ExecutionUnit) -> ArrayExecutionUnit | None:
    """The array counterpart of a scalar unit, or None.

    Exact-type mapping for the built-ins (a subclass may override
    scalar behaviour, so it must not inherit the parent's vectorised
    form).  Other units participate by exposing an ``as_array_unit()``
    method returning their own :class:`ArrayExecutionUnit` (or None)
    -- :class:`repro.faults.injector.FaultyExecutionUnit` uses this
    hook to supply array-level fault injection.  ``None`` means the
    unit has no bit-exact vectorised form and callers must keep the
    scalar path.
    """
    if type(unit) is PerfectExecutionUnit:
        return Float64ArrayUnit()
    if type(unit) is Float32ExecutionUnit:
        return Float32ArrayUnit()
    hook = getattr(unit, "as_array_unit", None)
    if hook is not None:
        return hook()
    return None

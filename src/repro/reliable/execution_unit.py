"""Execution units: where arithmetic physically happens.

The paper targets FPGA arithmetic blocks; here an *execution unit* is
the software model of one processing element.  Redundant operators
call the unit several times and compare -- the unit is the fault
boundary, so fault injection (:mod:`repro.faults`) wraps or replaces
the unit, never the operators, mirroring how single-event upsets hit
the PE rather than the checking logic.
"""

from __future__ import annotations

import numpy as np


class ExecutionUnit:
    """Interface of a scalar arithmetic unit."""

    def multiply(self, a: float, b: float) -> float:
        raise NotImplementedError

    def add(self, a: float, b: float) -> float:
        raise NotImplementedError


class PerfectExecutionUnit(ExecutionUnit):
    """A fault-free unit: plain (double-precision) IEEE-754 arithmetic."""

    def multiply(self, a: float, b: float) -> float:
        return a * b

    def add(self, a: float, b: float) -> float:
        return a + b


class Float32ExecutionUnit(ExecutionUnit):
    """A fault-free unit with bit-exact 32-bit arithmetic.

    Models the single-precision datapath of the paper's FPGA target:
    operands and results are rounded to IEEE-754 binary32, so the
    values redundant executions compare are exactly the words a
    hardware comparator would see.  Slower than
    :class:`PerfectExecutionUnit` (NumPy scalar round-trips); used
    where hardware fidelity matters, e.g. the Table 1 measurement.
    """

    def multiply(self, a: float, b: float) -> float:
        return float(np.float32(a) * np.float32(b))

    def add(self, a: float, b: float) -> float:
        return float(np.float32(a) + np.float32(b))

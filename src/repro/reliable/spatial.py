"""Spatial redundancy across a processing-element array.

Paper Section II.B: redundancy "can be achieved on a spatial basis
using for instance two otherwise independent compute units ... In the
case of spatial redundancy and (also) given an error, the platform
has the potential to operate in a reduced mode allowing the
implementation of graceful degradation strategies."

This module models that option, completing the redundancy design
space next to the temporal operators of
:mod:`repro.reliable.operators`:

* a :class:`PEArray` of independent execution units (think GPU/NPU
  processing elements -- "the failure of one of 128 processing
  elements ... causing a total safety-relevant system shutdown cannot
  be considered desirable");
* :class:`SpatialRedundantOperator` runs each operation on *two
  different* PEs and compares.  Unlike temporal DMR, a permanent
  stuck-at fault in one PE disagrees with the healthy one and is
  **detected**, closing the common-mode blind spot measured in the
  fault-coverage experiments;
* per-PE health tracking with leaky buckets implements graceful
  degradation: a PE whose bucket overflows is retired from the pool
  and the array keeps operating in a reduced mode instead of
  resetting the system (the lockstep response the paper argues
  against for parallel arrays).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reliable.errors import ReliabilityError
from repro.reliable.execution_unit import ExecutionUnit, PerfectExecutionUnit
from repro.reliable.leaky_bucket import LeakyBucket
from repro.reliable.operators import Operator
from repro.reliable.qualified import QualifiedValue


class ArrayExhaustedError(ReliabilityError):
    """Fewer than two healthy PEs remain: spatial DMR is impossible."""


@dataclass
class PEState:
    """One processing element and its health accounting."""

    index: int
    unit: ExecutionUnit
    bucket: LeakyBucket
    retired: bool = False
    operations: int = 0
    disagreements: int = 0


class PEArray:
    """A pool of independent processing elements.

    Parameters
    ----------
    units:
        The execution units, one per PE.  Pass faulty units (from
        :mod:`repro.faults`) for the PEs under test.
    bucket_factor, bucket_ceiling:
        Health-bucket geometry per PE.  A PE is *suspected* on every
        disagreement it participates in -- including the healthy
        partner of a faulty PE -- so the ceiling defaults higher than
        Algorithm 3's (4x the factor): under round-robin pairing a
        stuck-at PE collects suspicion at twice the rate of its
        changing partners and reaches the ceiling first, after which
        the partners' buckets drain.  (With only two PEs the faulty
        element cannot be localised and both retire together; arrays
        need >= 3 elements for graceful degradation.)
    """

    def __init__(
        self,
        units: list[ExecutionUnit] | None = None,
        n_elements: int = 4,
        bucket_factor: int = 2,
        bucket_ceiling: int | None = None,
    ) -> None:
        if units is None:
            units = [PerfectExecutionUnit() for _ in range(n_elements)]
        if len(units) < 2:
            raise ValueError("a PE array needs at least two elements")
        if bucket_ceiling is None:
            bucket_ceiling = 4 * bucket_factor
        self.elements = [
            PEState(
                index=i,
                unit=unit,
                bucket=LeakyBucket(
                    factor=bucket_factor, ceiling=bucket_ceiling
                ),
            )
            for i, unit in enumerate(units)
        ]
        self._next = 0

    # -- scheduling -----------------------------------------------------
    def healthy(self) -> list[PEState]:
        return [pe for pe in self.elements if not pe.retired]

    @property
    def degraded(self) -> bool:
        """True when at least one PE has been retired."""
        return any(pe.retired for pe in self.elements)

    def pick_pair(self) -> tuple[PEState, PEState]:
        """Round-robin pick of two distinct healthy PEs."""
        pool = self.healthy()
        if len(pool) < 2:
            raise ArrayExhaustedError(
                f"only {len(pool)} healthy PE(s) left"
            )
        first = pool[self._next % len(pool)]
        second = pool[(self._next + 1) % len(pool)]
        self._next += 1
        return first, second

    # -- health ---------------------------------------------------------
    def report_agreement(self, *pes: PEState) -> None:
        for pe in pes:
            pe.operations += 1
            pe.bucket.record_success()

    def report_disagreement(self, *pes: PEState) -> None:
        """Both parties to a mismatch are suspected; the truly faulty
        PE keeps disagreeing with everyone and its bucket wins the
        race to the ceiling."""
        for pe in pes:
            pe.operations += 1
            pe.disagreements += 1
            if pe.bucket.record_error() and not pe.retired:
                pe.retired = True

    def health_summary(self) -> str:
        lines = []
        for pe in self.elements:
            state = "RETIRED" if pe.retired else "healthy"
            lines.append(
                f"PE{pe.index}: {state:<8} ops={pe.operations} "
                f"disagreements={pe.disagreements} "
                f"bucket={pe.bucket.level}"
            )
        return "\n".join(lines)


class SpatialRedundantOperator(Operator):
    """DMR across two *different* processing elements.

    The qualifier is the cross-PE comparison.  On disagreement both
    PEs are reported to the array's health tracker; Algorithm 3's
    rollback then re-executes on the next scheduled pair, which --
    once a persistently-faulty PE is retired -- lands on healthy
    silicon and succeeds: graceful degradation instead of platform
    loss.
    """

    executions_per_op = 2

    def __init__(self, array: PEArray) -> None:
        super().__init__(unit=None)
        self.array = array

    def _run(self, method: str, a: float, b: float) -> QualifiedValue:
        first, second = self.array.pick_pair()
        result_a = getattr(first.unit, method)(a, b)
        result_b = getattr(second.unit, method)(a, b)
        if result_a == result_b:
            self.array.report_agreement(first, second)
            return QualifiedValue(result_a, True)
        self.array.report_disagreement(first, second)
        return QualifiedValue(result_a, False)

    def multiply(self, a: float, b: float) -> QualifiedValue:
        return self._run("multiply", a, b)

    def add(self, a: float, b: float) -> QualifiedValue:
        return self._run("add", a, b)

"""Fixed-point arithmetic units (FPGA DSP-block model).

The paper's final target is FPGA hardware, where arithmetic is
frequently implemented in fixed point on DSP slices rather than in
IEEE floating point.  This module models a signed Q(m.f) datapath
with saturating arithmetic, so the repository can answer the
implementation question the paper defers ("a substantial number of
degrees of freedom when implementing arithmetic operations in an
FPGA"): what does quantised, saturating arithmetic do to convolution
accuracy and to redundant-execution comparability?

Key property for the reliability machinery: fixed-point arithmetic is
*bit-exact reproducible*, so redundant executions compare equal by
construction and saturation events are deterministic -- unlike float,
no tolerance questions arise in the comparator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reliable.execution_unit import ExecutionUnit


@dataclass(frozen=True)
class QFormat:
    """Signed fixed-point format with ``integer_bits`` + ``frac_bits``
    (plus sign).  Q7.8 stores values in [-128, 128) at 1/256 steps.
    """

    integer_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.frac_bits < 0:
            raise ValueError("bit counts must be non-negative")
        if self.integer_bits + self.frac_bits == 0:
            raise ValueError("format must have at least one bit")

    @property
    def scale(self) -> int:
        """Raw units per 1.0."""
        return 1 << self.frac_bits

    @property
    def max_raw(self) -> int:
        return (1 << (self.integer_bits + self.frac_bits)) - 1

    @property
    def min_raw(self) -> int:
        return -(1 << (self.integer_bits + self.frac_bits))

    @property
    def max_value(self) -> float:
        return self.max_raw / self.scale

    @property
    def min_value(self) -> float:
        return self.min_raw / self.scale

    @property
    def resolution(self) -> float:
        return 1.0 / self.scale

    def quantize_raw(self, value: float) -> int:
        """Round-to-nearest quantisation to raw units, saturating."""
        raw = int(round(value * self.scale))
        return max(self.min_raw, min(self.max_raw, raw))

    def quantize(self, value: float) -> float:
        """Quantise a float to the nearest representable value."""
        return self.quantize_raw(value) / self.scale


#: Common formats: Q7.8 (16-bit) and Q15.16 (32-bit) DSP datapaths.
Q7_8 = QFormat(7, 8)
Q15_16 = QFormat(15, 16)


class FixedPointExecutionUnit(ExecutionUnit):
    """Saturating fixed-point multiply/accumulate unit.

    Inputs are quantised to the format, the operation is performed in
    exact integer arithmetic and the result is saturated back into the
    format -- the behaviour of a DSP slice with output saturation
    enabled (the "caging after individual operations" of the paper's
    ref [28], implemented in hardware).

    Attributes
    ----------
    saturations:
        How many results saturated; a cheap hardware-style diagnostic
        the caller can read after a layer execution.
    """

    def __init__(self, fmt: QFormat = Q7_8) -> None:
        self.fmt = fmt
        self.saturations = 0

    def _saturate(self, raw: int) -> int:
        if raw > self.fmt.max_raw:
            self.saturations += 1
            return self.fmt.max_raw
        if raw < self.fmt.min_raw:
            self.saturations += 1
            return self.fmt.min_raw
        return raw

    def multiply(self, a: float, b: float) -> float:
        ra = self.fmt.quantize_raw(a)
        rb = self.fmt.quantize_raw(b)
        # Exact double-width product, rescaled with round-to-nearest.
        product = ra * rb
        half = self.fmt.scale // 2
        rescaled = (product + (half if product >= 0 else -half)) // self.fmt.scale
        return self._saturate(rescaled) / self.fmt.scale

    def add(self, a: float, b: float) -> float:
        raw = self.fmt.quantize_raw(a) + self.fmt.quantize_raw(b)
        return self._saturate(raw) / self.fmt.scale

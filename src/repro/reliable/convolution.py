"""Reliable convolution kernel (paper Algorithm 3).

One convolution output element is a dot product between a receptive
field and a filter, followed by a bias add.  Algorithm 3 executes each
multiply and each accumulate through a qualified operator; a failed
qualifier triggers an *operation-level rollback* (the operation is
re-executed -- "should one incorrect operation occur then that
operation shall be repeated") while a leaky-bucket counter decides
when errors have become persistent and the kernel must abort with an
explicit failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.reliable.errors import PersistentFailureError
from repro.reliable.leaky_bucket import LeakyBucket
from repro.reliable.operators import Operator
from repro.reliable.qualified import QualifiedValue


@dataclass
class ConvolutionStats:
    """Diagnostics for one reliable kernel execution.

    The paper's version keeps only a global error counter; richer
    counters cost nothing in software and make the benches and fault-
    injection campaigns auditable.
    """

    operations: int = 0
    errors_detected: int = 0
    rollbacks: int = 0
    bucket_peak: int = 0

    def merge(self, other: "ConvolutionStats") -> None:
        self.operations += other.operations
        self.errors_detected += other.errors_detected
        self.rollbacks += other.rollbacks
        self.bucket_peak = max(self.bucket_peak, other.bucket_peak)


def _checked(
    op: Callable[[float, float], QualifiedValue],
    a: float,
    b: float,
    bucket: LeakyBucket,
    stats: ConvolutionStats,
) -> float:
    """Execute one operation with rollback-on-error (Algorithm 3 core).

    Every attempt that fails its qualifier feeds the bucket; overflow
    aborts with :class:`PersistentFailureError`.  A successful attempt
    leaks the bucket by one.
    """
    while True:
        stats.operations += 1
        result = op(a, b)
        if result.ok:
            bucket.record_success()
            return result.value
        stats.errors_detected += 1
        overflow = bucket.record_error()
        stats.bucket_peak = max(stats.bucket_peak, bucket.level)
        if overflow:
            raise PersistentFailureError(
                "leaky bucket overflowed: persistent execution failure",
                operations_completed=stats.operations,
                errors_detected=stats.errors_detected,
            )
        stats.rollbacks += 1


def reliable_dot(
    x: Sequence[float],
    w: Sequence[float],
    operator: Operator,
    bucket: LeakyBucket,
    stats: ConvolutionStats | None = None,
) -> QualifiedValue:
    """Qualified dot product ``sum_i x_i * w_i``.

    Multiplications and accumulations each pass through ``operator``
    with per-operation rollback.  Raises
    :class:`PersistentFailureError` on bucket overflow; otherwise the
    returned value is qualified True ("exit conditions are failure or
    success").
    """
    if len(x) != len(w):
        raise ValueError(f"length mismatch: {len(x)} vs {len(w)}")
    stats = stats if stats is not None else ConvolutionStats()
    acc = 0.0
    for xi, wi in zip(x, w):
        product = _checked(operator.multiply, float(xi), float(wi),
                           bucket, stats)
        acc = _checked(operator.add, acc, product, bucket, stats)
    return QualifiedValue(acc, True)


def reliable_convolution(
    patch: Sequence[float],
    weights: Sequence[float],
    bias: float,
    operator: Operator,
    bucket: LeakyBucket | None = None,
    stats: ConvolutionStats | None = None,
) -> QualifiedValue:
    """Paper Algorithm 3: one convolution output element, reliably.

    Parameters
    ----------
    patch:
        Flattened receptive field (length ``c * kh * kw``).
    weights:
        Flattened filter, same length.
    bias:
        Filter bias, accumulated through the qualified adder as well.
    operator:
        Qualified operator (Algorithm 1 plain, Algorithm 2 redundant,
        or TMR).
    bucket:
        Leaky-bucket error counter; a fresh default bucket per call
        when omitted.  Algorithm 3 keeps it as a global across the
        layer -- pass a shared instance to reproduce that behaviour.

    Returns
    -------
    QualifiedValue
        The output element, qualifier True.

    Raises
    ------
    PersistentFailureError
        When the bucket ceiling is reached (the only failure exit).
    """
    bucket = bucket if bucket is not None else LeakyBucket()
    stats = stats if stats is not None else ConvolutionStats()
    partial = reliable_dot(patch, weights, operator, bucket, stats)
    total = _checked(
        operator.add, partial.value, float(bias), bucket, stats
    )
    return QualifiedValue(total, True)

"""Tightly-coupled lockstep execution model (paper Section II.A).

Two replicas execute the same step sequence; after every step their
visible outputs are compared and any mismatch raises
:class:`~repro.reliable.errors.LockstepMismatchError` -- the software
analogue of the bus comparator flagging divergent processors.  The
paper notes a lockstep error usually triggers a system reset; the
:meth:`LockstepPair.reset` hook models that response.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

from repro.reliable.errors import LockstepMismatchError


class LockstepPair:
    """Run two replicas step-by-step with output comparison.

    Parameters
    ----------
    primary, shadow:
        Callables invoked with the step input.  For true temporal
        redundancy pass the same callable twice; for diverse
        redundancy pass two implementations of the same function.
    compare:
        Equality predicate on step outputs; defaults to ``==`` which
        for NumPy arrays is wrapped into an ``all()`` check.
    """

    def __init__(
        self,
        primary: Callable[[Any], Any],
        shadow: Callable[[Any], Any],
        compare: Callable[[Any, Any], bool] | None = None,
    ) -> None:
        self.primary = primary
        self.shadow = shadow
        self.compare = compare or _default_compare
        self.steps_completed = 0
        self.was_reset = False

    def step(self, value: Any) -> Any:
        """Execute one lockstep step; returns the agreed output."""
        out_a = self.primary(value)
        out_b = self.shadow(value)
        if not self.compare(out_a, out_b):
            raise LockstepMismatchError(
                f"lockstep mismatch at step {self.steps_completed}",
                step=self.steps_completed,
            )
        self.steps_completed += 1
        return out_a

    def run(self, inputs: Iterable[Any]) -> list[Any]:
        """Run a sequence of steps, stopping at the first mismatch."""
        return [self.step(value) for value in inputs]

    def reset(self) -> None:
        """Model the system reset a lockstep error typically causes."""
        self.steps_completed = 0
        self.was_reset = True


def _default_compare(a: Any, b: Any) -> bool:
    result = a == b
    if hasattr(result, "all"):
        return bool(result.all())
    return bool(result)

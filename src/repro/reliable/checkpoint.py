"""Generic checkpoint/rollback machinery.

Algorithm 3 reduces the rollback distance to a single operation; this
module provides the *general* form -- checkpoint a segment of
computation, validate its result, re-execute on failure -- so the
rollback-distance trade-off the paper discusses (Section II.E, ref
[43]) can be measured: one big segment re-executes cheaply-checked but
expensively-repeated work, per-operation checkpoints are the opposite
extreme.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

from repro.reliable.errors import PersistentFailureError
from repro.reliable.leaky_bucket import LeakyBucket


@dataclass
class RollbackPolicy:
    """How a checkpointed segment responds to validation failures.

    Parameters
    ----------
    max_rollbacks:
        Hard cap on re-executions of one segment.  Models the paper's
        observation that "in a repetitive error case, there are few
        mechanisms available to halt rollback and re-execution" -- the
        cap is that mechanism.
    bucket:
        Optional shared leaky bucket; when provided, every validation
        failure feeds it and overflow aborts regardless of
        ``max_rollbacks``.
    """

    max_rollbacks: int = 1
    bucket: LeakyBucket | None = None

    def __post_init__(self) -> None:
        if self.max_rollbacks < 0:
            raise ValueError("max_rollbacks must be >= 0")


class CheckpointedSegment:
    """A re-executable unit of work with validation.

    Parameters
    ----------
    compute:
        Zero-argument callable producing the segment result.  It must
        be effect-free (or idempotent): rollback simply calls it
        again.
    validate:
        Predicate on the result; False triggers rollback.  For
        redundant execution pass e.g. a second-execution comparator.
    policy:
        The rollback policy.

    Example
    -------
    >>> seg = CheckpointedSegment(
    ...     compute=lambda: expensive_layer(x),
    ...     validate=lambda out: bool((out == expensive_layer(x)).all()),
    ... )
    >>> out = seg.run()
    """

    def __init__(
        self,
        compute: Callable[[], Any],
        validate: Callable[[Any], bool],
        policy: RollbackPolicy | None = None,
        name: str = "segment",
    ) -> None:
        self.compute = compute
        self.validate = validate
        self.policy = policy or RollbackPolicy()
        self.name = name
        self.rollbacks_performed = 0

    def run(self) -> Any:
        """Execute with checkpoint/rollback; return the valid result.

        Raises
        ------
        PersistentFailureError
            After ``max_rollbacks`` failed re-executions, or on leaky
            bucket overflow.
        """
        attempts = 0
        while True:
            result = self.compute()
            attempts += 1
            if self.validate(result):
                if self.policy.bucket is not None:
                    self.policy.bucket.record_success()
                return result
            overflow = False
            if self.policy.bucket is not None:
                overflow = self.policy.bucket.record_error()
            if overflow or attempts > self.policy.max_rollbacks:
                raise PersistentFailureError(
                    f"{self.name}: validation kept failing after "
                    f"{attempts} attempt(s)",
                    operations_completed=0,
                    errors_detected=attempts,
                )
            self.rollbacks_performed += 1

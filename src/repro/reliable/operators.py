"""Qualified arithmetic operators (paper Algorithms 1 and 2, plus TMR).

Each operator exposes ``multiply`` and ``add`` returning a
:class:`~repro.reliable.qualified.QualifiedValue`.  Operators differ
only in how they execute and check -- the overloading mechanism the
paper describes ("the overloading allows us to attach multiple methods
to a basic operation").
"""

from __future__ import annotations

from repro.reliable.bits import same_word
from repro.reliable.execution_unit import ExecutionUnit, PerfectExecutionUnit
from repro.reliable.qualified import QualifiedValue
from repro.reliable.voting import majority_vote


class Operator:
    """Base qualified operator bound to an execution unit."""

    #: Number of unit invocations per qualified operation; used by the
    #: cost model (paper Table 1 context: Algorithm 2 "performs two
    #: multiplications and a comparison").
    executions_per_op: int = 1

    #: True when the operator *masks* single faults (voting) rather
    #: than merely detecting them; selects the guarantee math in
    #: :class:`repro.core.guarantee.ReliabilityGuarantee`.
    masks_faults: bool = False

    def __init__(self, unit: ExecutionUnit | None = None) -> None:
        self.unit = unit or PerfectExecutionUnit()

    def multiply(self, a: float, b: float) -> QualifiedValue:
        raise NotImplementedError

    def add(self, a: float, b: float) -> QualifiedValue:
        raise NotImplementedError


class PlainOperator(Operator):
    """Algorithm 1: single execution, qualifier preset to True.

    "This operation simply returns a product and a predefined
    qualifier, set to True.  We use operations like this to determine
    baseline performance characteristics."  Note the qualifier is an
    *assumption*, not a check: under fault injection a PlainOperator
    happily qualifies a corrupted result -- exactly the unprotected
    baseline the paper compares against.
    """

    executions_per_op = 1

    def multiply(self, a: float, b: float) -> QualifiedValue:
        return QualifiedValue(self.unit.multiply(a, b), True)

    def add(self, a: float, b: float) -> QualifiedValue:
        return QualifiedValue(self.unit.add(a, b), True)


class RedundantOperator(Operator):
    """Algorithm 2: dual execution, qualifier = result agreement (DMR).

    "Here the qualifier is set to True should the two products be the
    same."  Detection only -- recovery is Algorithm 3's rollback.
    When the results disagree the first result is returned (arbitrarily;
    the caller must treat it as invalid because ``ok`` is False).

    Agreement is bit-for-bit on the 64-bit storage words
    (:func:`repro.reliable.bits.same_word`), as a hardware comparator
    would check it.  Float ``==`` would mis-qualify two edge cases: a
    true-NaN result (e.g. ``inf - inf``) never equals its re-execution,
    so the rollback loop spins until bucket overflow -- and with
    ``on_persistent_failure="mark"`` the resulting NaN output poisons
    every downstream reliable op -- while ``+0.0`` vs ``-0.0`` (a
    sign-bit upset on a zero) would be silently accepted.
    """

    executions_per_op = 2

    def multiply(self, a: float, b: float) -> QualifiedValue:
        first = self.unit.multiply(a, b)
        second = self.unit.multiply(a, b)
        return QualifiedValue(first, same_word(first, second))

    def add(self, a: float, b: float) -> QualifiedValue:
        first = self.unit.add(a, b)
        second = self.unit.add(a, b)
        return QualifiedValue(first, same_word(first, second))


class TMROperator(Operator):
    """Triple modular redundancy: three executions, majority vote.

    The paper: the value can be "agreed upon by execution of the
    algorithm three times and voting on the result".  A fault in one
    of three executions is *masked* (value correct, qualifier True);
    only when all three disagree is the qualifier False.
    """

    executions_per_op = 3
    masks_faults = True

    def _vote(self, results: list[float]) -> QualifiedValue:
        value, agreement = majority_vote(results)
        return QualifiedValue(value, agreement >= 2)

    def multiply(self, a: float, b: float) -> QualifiedValue:
        return self._vote([self.unit.multiply(a, b) for _ in range(3)])

    def add(self, a: float, b: float) -> QualifiedValue:
        return self._vote([self.unit.add(a, b) for _ in range(3)])


_OPERATOR_KINDS = {
    "plain": PlainOperator,
    "dmr": RedundantOperator,
    "redundant": RedundantOperator,
    "tmr": TMROperator,
}


def register_operator(
    kind: str, cls: type[Operator], *, overwrite: bool = False
) -> None:
    """Add an operator kind to the factory table.

    Registered kinds become valid everywhere a kind string is
    accepted: :func:`make_operator`,
    :class:`~repro.reliable.executor.ReliableConv2D` and
    :class:`repro.core.partition.HybridPartition.redundancy` (the
    partition derives its redundancy multiplier from the class's
    ``executions_per_op``).  The ``repro.api.OPERATORS`` registry
    funnels into this table.
    """
    if not kind or not isinstance(kind, str):
        raise ValueError("operator kind must be a non-empty string")
    if kind in _OPERATOR_KINDS and not overwrite:
        raise ValueError(
            f"operator kind {kind!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    if not (isinstance(cls, type) and issubclass(cls, Operator)):
        raise TypeError("operator class must subclass Operator")
    _OPERATOR_KINDS[kind] = cls


def operator_kinds() -> list[str]:
    """All registered operator kind strings."""
    return sorted(_OPERATOR_KINDS)


def operator_multiplier(kind: str) -> int:
    """Unit executions per qualified operation for a registered kind."""
    return _operator_class(kind).executions_per_op


def operator_masks(kind: str) -> bool:
    """Whether a registered kind masks faults by voting (TMR-like)."""
    return _operator_class(kind).masks_faults


def operator_kind_of(operator: Operator) -> str:
    """The registry kind string of an operator instance.

    Reverse lookup over the factory table by *exact* class, so the
    same canonical kind comes back no matter how the operator was
    constructed -- ``ReliableConv2D(conv, RedundantOperator())`` and
    ``ReliableConv2D(conv, "dmr")`` report identically.  Aliases
    resolve to the first-registered kind (``"dmr"``, never
    ``"redundant"``).  Instances of unregistered classes (e.g. ad-hoc
    subclasses in tests) fall back to the class name.
    """
    for kind, cls in _OPERATOR_KINDS.items():
        if type(operator) is cls:
            return kind
    return type(operator).__name__


def _operator_class(kind: str) -> type[Operator]:
    try:
        return _OPERATOR_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown operator kind {kind!r}; "
            f"choose from {sorted(_OPERATOR_KINDS)}"
        ) from None


def make_operator(kind: str, unit: ExecutionUnit | None = None) -> Operator:
    """Operator factory: ``"plain"``, ``"dmr"``/``"redundant"``,
    ``"tmr"``, or any kind added via :func:`register_operator`."""
    return _operator_class(kind)(unit)

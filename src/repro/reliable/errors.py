"""Exception hierarchy for the reliable execution substrate."""

from __future__ import annotations


class ReliabilityError(Exception):
    """Base class for reliability-related failures."""


class PersistentFailureError(ReliabilityError):
    """The leaky-bucket error counter reached its ceiling.

    The paper: "Only persistent failures are explicitly reported."
    Transient errors are absorbed by rollback; this exception is the
    explicit report that the fault is not going away.

    Attributes
    ----------
    operations_completed:
        Number of operations that had completed successfully before
        the abort, useful for diagnosing where in the kernel the
        persistent fault struck.
    errors_detected:
        Total qualifier failures observed, including the ones that
        were successfully rolled back.
    """

    def __init__(
        self,
        message: str,
        operations_completed: int = 0,
        errors_detected: int = 0,
    ) -> None:
        super().__init__(message)
        self.operations_completed = operations_completed
        self.errors_detected = errors_detected


class LockstepMismatchError(ReliabilityError):
    """The two halves of a lockstep pair diverged.

    Attributes
    ----------
    step:
        Index of the step at which the divergence was observed.
    """

    def __init__(self, message: str, step: int) -> None:
        super().__init__(message)
        self.step = step

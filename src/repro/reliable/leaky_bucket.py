"""Leaky-bucket error counter (paper Algorithm 3, lines 2/12/18-19).

Semantics from the paper:

* on every **failed** operation the counter is incremented by a
  ``factor`` and checked against a ``ceiling``;
* on every **correct** operation the counter is decremented by one,
  floored at zero;
* "In this way a stream of correctly executed operations will cancel
  one, but not two successive errors."

That last sentence pins the default geometry: with ``factor = 2`` a
single error (counter 2) stays below a ceiling of 3 and drains away,
while two successive errors (counter 4) trip it.  The default ceiling
is therefore ``2 * factor - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LeakyBucket:
    """Error counter with leak-on-success.

    Parameters
    ----------
    factor:
        Amount added per detected error (paper's "factor", line 12).
    ceiling:
        Abort threshold; the bucket *overflows* when the counter
        reaches or exceeds it.  Defaults to ``2 * factor - 1`` (see
        module docstring).
    """

    factor: int = 2
    ceiling: int | None = None
    level: int = field(default=0, init=False)
    total_errors: int = field(default=0, init=False)
    total_successes: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError("factor must be >= 1")
        if self.ceiling is None:
            self.ceiling = 2 * self.factor - 1
        if self.ceiling < self.factor:
            raise ValueError(
                "ceiling below factor would abort on the first error; "
                "use a plain fail-fast check instead"
            )

    def record_error(self) -> bool:
        """Add ``factor``; return True when the bucket overflows."""
        self.total_errors += 1
        self.level += self.factor
        return self.level >= self.ceiling

    def record_success(self) -> None:
        """Leak one unit, floored at zero (paper lines 18-19)."""
        self.total_successes += 1
        if self.level > 0:
            self.level -= 1

    def record_successes(self, count: int) -> None:
        """Leak ``count`` units in one call.

        Exactly equivalent to ``count`` repeats of
        :meth:`record_success` -- the bulk form the vectorized
        speculate-then-verify engine uses to account a run of agreed
        operations without a Python call per operation.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        self.total_successes += count
        self.level = max(0, self.level - count)

    @property
    def overflowed(self) -> bool:
        """Whether the current level is at or above the ceiling."""
        return self.level >= self.ceiling

    def reset(self) -> None:
        """Return to an empty bucket, clearing statistics."""
        self.level = 0
        self.total_errors = 0
        self.total_successes = 0

"""Reliable execution of whole network layers.

Two granularities, matching the paper's discussion of rollback
distance:

* :class:`ReliableConv2D` -- operation granularity.  Every multiply
  and accumulate of a convolution layer goes through a qualified
  operator with per-operation rollback (Algorithm 3 applied across the
  layer).  The ``"scalar"`` engine is the configuration behind the
  paper's Table 1 and is deliberately slow in Python (the paper
  reports 301.91 s plain / 648.87 s redundant for AlexNet's first
  layer on a desktop CPU); the ``"vectorized"`` engine
  (:mod:`repro.reliable.vectorized`) produces bitwise-identical
  results by speculating the whole layer as array passes and
  verifying on storage words, and is the default wherever that
  equivalence is provable (``engine="auto"``).
* :func:`redundant_layer_forward` -- layer granularity.  The whole
  layer runs N times vectorised and the outputs are compared/voted.
  This is the temporal-redundancy checkpoint the paper describes in
  Section II.B.

Engines are registered in a factory table (:func:`register_engine`),
mirrored by the ``repro.api.ENGINES`` registry view, so alternative
execution strategies plug in the way operators do.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers.conv import Conv2D
from repro.reliable.convolution import ConvolutionStats, reliable_convolution
from repro.reliable.errors import PersistentFailureError
from repro.reliable.leaky_bucket import LeakyBucket
from repro.reliable.operators import Operator, make_operator, operator_kind_of
from repro.reliable.voting import majority_vote


@dataclass
class ExecutionReport:
    """What happened while executing a layer reliably.

    A batched execution is one report whose counters aggregate the
    whole batch; ``per_image`` additionally attributes them, one
    sub-report per input image in batch order.  Each sub-report's
    counters cover exactly that image's share (its ``failed_outputs``
    are rebased to image index 0, so it reads like a single-image
    run), and its ``elapsed_seconds`` repeats the aggregate wall time
    -- the batch ran as one timed pass, so per-image timing does not
    exist.  Engines that predate the field may leave it empty; readers
    fall back to the aggregate then.
    """

    operations: int = 0
    errors_detected: int = 0
    rollbacks: int = 0
    persistent_failures: int = 0
    elapsed_seconds: float = 0.0
    operator_kind: str = "plain"
    failed_outputs: list[tuple[int, ...]] = field(default_factory=list)
    per_image: list["ExecutionReport"] = field(default_factory=list)

    @property
    def error_rate(self) -> float:
        """Detected errors per executed operation."""
        if self.operations == 0:
            return 0.0
        return self.errors_detected / self.operations


class _ImageSlice:
    """Delta-snapshot one image's share of a batched execution.

    Construct at the top of an engine's per-image loop, call
    :meth:`snapshot` at the bottom: the difference of the running
    counters is that image's :class:`ExecutionReport`, with its
    ``failed_outputs`` rebased to image index 0 so the sub-report is
    indistinguishable from the report of a single-image run.
    """

    def __init__(
        self, report: ExecutionReport, stats: ConvolutionStats
    ) -> None:
        self._report = report
        self._stats = stats
        self._operations = stats.operations
        self._errors = stats.errors_detected
        self._rollbacks = stats.rollbacks
        self._failures = report.persistent_failures
        self._failed = len(report.failed_outputs)

    def snapshot(self) -> ExecutionReport:
        report, stats = self._report, self._stats
        return ExecutionReport(
            operations=stats.operations - self._operations,
            errors_detected=stats.errors_detected - self._errors,
            rollbacks=stats.rollbacks - self._rollbacks,
            persistent_failures=(
                report.persistent_failures - self._failures
            ),
            operator_kind=report.operator_kind,
            failed_outputs=[
                (0,) + tuple(pos[1:])
                for pos in report.failed_outputs[self._failed:]
            ],
        )


# ---------------------------------------------------------------------------
# Engine factory table
# ---------------------------------------------------------------------------

#: An engine executes a :class:`ReliableConv2D` forward pass:
#: ``engine(executor, x, filters) -> (output, report)``.
EngineFn = Callable[
    ["ReliableConv2D", np.ndarray, "list[int] | None"],
    "tuple[np.ndarray, ExecutionReport]",
]

_ENGINES: dict[str, EngineFn] = {}


def register_engine(
    name: str, fn: EngineFn, *, overwrite: bool = False
) -> None:
    """Add an execution engine to the factory table.

    Registered names become valid for ``ReliableConv2D(engine=...)``
    and ``PartitionConfig(engine=...)``; the ``repro.api.ENGINES``
    registry funnels into this table.  ``"auto"`` is reserved for the
    selection policy (pick ``"vectorized"`` exactly when its result is
    provably bit-identical, else ``"scalar"``) and cannot be
    registered.
    """
    if not name or not isinstance(name, str):
        raise ValueError("engine name must be a non-empty string")
    if name == "auto":
        raise ValueError(
            "'auto' is the engine-selection policy, not an engine"
        )
    if name in _ENGINES and not overwrite:
        raise ValueError(
            f"engine {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    if not callable(fn):
        raise ValueError("engine must be callable")
    _ENGINES[name] = fn


def engine_names() -> list[str]:
    """All registered engine names."""
    _ensure_builtin_engines()
    return sorted(_ENGINES)


def _ensure_builtin_engines() -> None:
    # The vectorized engine registers itself on import; importing it
    # lazily here keeps executor <-> vectorized free of an import
    # cycle while guaranteeing the table is complete whenever a name
    # is resolved.
    import repro.reliable.vectorized  # noqa: F401


def engine_fn(name: str) -> EngineFn:
    """Look up an engine; unknown names list the registered set."""
    _ensure_builtin_engines()
    try:
        return _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; choose 'auto' or one of "
            f"{sorted(_ENGINES)}"
        ) from None


class ReliableConv2D:
    """Run a :class:`repro.nn.layers.Conv2D` through Algorithm 3.

    Parameters
    ----------
    layer:
        The convolution layer whose weights are used.
    operator:
        A qualified operator instance, or a kind string accepted by
        :func:`repro.reliable.operators.make_operator`.
    bucket_factor, bucket_ceiling:
        Leaky-bucket geometry; one bucket is shared across the layer
        execution *of each image* (the paper's global error counter,
        scoped to one inference), so batched execution aborts exactly
        where per-image execution would.
    on_persistent_failure:
        ``"raise"`` (default) re-raises the abort; ``"mark"`` records
        the failed output position, writes NaN there and continues --
        the graceful-degradation variant the paper mentions for
        spatial redundancy.
    engine:
        Execution strategy.  ``"scalar"`` is the paper-literal
        Algorithm 3 loop (the Table 1 timing-reproduction mode);
        ``"vectorized"`` is the speculate-then-verify engine of
        :mod:`repro.reliable.vectorized` (bitwise-identical results,
        orders of magnitude faster); ``"auto"`` (default) picks
        ``"vectorized"`` exactly when the operator/unit pair makes
        speculation provably bit-exact -- fault-free built-in units
        under the built-in operators -- and ``"scalar"`` otherwise,
        so fault-injection campaigns keep their per-operation fault
        streams unless a caller opts in.
    """

    def __init__(
        self,
        layer: Conv2D,
        operator: Operator | str = "dmr",
        bucket_factor: int = 2,
        bucket_ceiling: int | None = None,
        on_persistent_failure: str = "raise",
        engine: str = "auto",
    ) -> None:
        if on_persistent_failure not in ("raise", "mark"):
            raise ValueError(
                "on_persistent_failure must be 'raise' or 'mark'"
            )
        self.layer = layer
        if isinstance(operator, str):
            self._operator_kind = operator
            self.operator = make_operator(operator)
        else:
            # Normalise through the operator registry so the report's
            # operator_kind is the same canonical kind string whether
            # the caller passed "dmr" or RedundantOperator(...).
            self._operator_kind = operator_kind_of(operator)
            self.operator = operator
        self.bucket_factor = bucket_factor
        self.bucket_ceiling = bucket_ceiling
        self.on_persistent_failure = on_persistent_failure
        if engine != "auto":
            engine_fn(engine)  # validate eagerly: unknown names raise
        self.engine = engine

    def forward(
        self, x: np.ndarray, filters: list[int] | None = None
    ) -> tuple[np.ndarray, ExecutionReport]:
        """Reliably compute the layer output for a batch.

        Parameters
        ----------
        x:
            Input batch ``(n, c, h, w)``.
        filters:
            Optional subset of output filters to execute reliably;
            the remaining filters are computed natively.  This is the
            hybrid partition hook: the paper's DCNN only needs the
            edge-detecting filter(s) to be dependable.

        Returns
        -------
        (output, report):
            ``output`` matches the layer's native forward shape.
        """
        return engine_fn(self._resolve_engine())(self, x, filters)

    def _resolve_engine(self) -> str:
        """The engine this forward pass actually runs.

        ``"auto"`` resolves to ``"vectorized"`` only when speculation
        is *exact* -- every redundant pass provably produces identical
        words, so outputs, reports and abort points match the scalar
        path bit for bit (see
        :func:`repro.reliable.vectorized.speculation_is_exact`).
        """
        if self.engine != "auto":
            return self.engine
        from repro.reliable.vectorized import speculation_is_exact

        return (
            "vectorized" if speculation_is_exact(self.operator)
            else "scalar"
        )

    def _prepare(
        self, x: np.ndarray, filters: list[int] | None
    ) -> tuple[
        np.ndarray, np.ndarray, np.ndarray, list[int], np.ndarray,
        ExecutionReport,
    ]:
        """Shared prologue of every engine: patch view, weight matrix,
        native execution of filters outside the reliable partition."""
        layer = self.layer
        patches = layer.input_patches(x)  # (n, oh, ow, c*kh*kw)
        n, out_h, out_w, _ = patches.shape
        wmat = layer.weight.value.reshape(layer.out_channels, -1)
        bias = layer.bias.value
        report = ExecutionReport(operator_kind=self._operator_kind)

        reliable_set = (
            set(range(layer.out_channels))
            if filters is None
            else set(filters)
        )
        out = np.empty(
            (n, layer.out_channels, out_h, out_w), dtype=np.float32
        )
        # Native path for filters outside the reliable partition.
        native_filters = [
            f for f in range(layer.out_channels) if f not in reliable_set
        ]
        if native_filters:
            # repro: allow[REDUCE-ORDER] -- audited: the *native*
            # (unprotected) filter lane, outside the qualified path by
            # definition; per-image batch-vs-scalar parity is pinned
            # by tests/api/test_batch_parity.py and
            # tests/reliable/test_vectorized_parity.py.
            native = patches @ wmat[native_filters].T + bias[native_filters]
            out[:, native_filters] = native.transpose(0, 3, 1, 2)
        return patches, wmat, bias, sorted(reliable_set), out, report

    def _forward_scalar(
        self, x: np.ndarray, filters: list[int] | None = None
    ) -> tuple[np.ndarray, ExecutionReport]:
        """The paper-literal engine: Algorithm 3, one qualified
        operation at a time (``engine="scalar"``)."""
        # repro: allow[AMBIENT-TIME] -- report metadata only
        # (ExecutionReport.elapsed_seconds); never feeds outputs or
        # qualification decisions.
        start = time.perf_counter()
        patches, wmat, bias, sorted_filters, out, report = self._prepare(
            x, filters
        )
        n, out_h, out_w, _ = patches.shape

        stats = ConvolutionStats()
        for img in range(n):
            image_slice = _ImageSlice(report, stats)
            # One bucket per image: the error budget is an attribute
            # of one inference, so a batched execution aborts exactly
            # when the same image would abort on its own -- the
            # batched hybrid path's parity contract depends on this.
            bucket = LeakyBucket(
                factor=self.bucket_factor, ceiling=self.bucket_ceiling
            )
            for f in sorted_filters:
                weights = wmat[f]
                b = float(bias[f])
                for i in range(out_h):
                    for j in range(out_w):
                        try:
                            result = reliable_convolution(
                                patches[img, i, j],
                                weights,
                                b,
                                self.operator,
                                bucket=bucket,
                                stats=stats,
                            )
                            out[img, f, i, j] = result.value
                        except PersistentFailureError:
                            report.persistent_failures += 1
                            if self.on_persistent_failure == "raise":
                                self._fill_report(report, stats, start)
                                raise
                            report.failed_outputs.append(
                                (img, f, i, j)
                            )
                            out[img, f, i, j] = np.nan
                            bucket.reset()
            report.per_image.append(image_slice.snapshot())
        self._fill_report(report, stats, start)
        return out, report

    def _fill_report(
        self,
        report: ExecutionReport,
        stats: ConvolutionStats,
        start: float,
    ) -> None:
        report.operations = stats.operations
        report.errors_detected = stats.errors_detected
        report.rollbacks = stats.rollbacks
        # repro: allow[AMBIENT-TIME] -- report metadata only.
        report.elapsed_seconds = time.perf_counter() - start
        # Per-image timing does not exist for a batched pass; each
        # attribution sub-report repeats the aggregate wall time.
        for sub in report.per_image:
            sub.elapsed_seconds = report.elapsed_seconds


def _scalar_engine(
    executor: ReliableConv2D, x: np.ndarray, filters: list[int] | None
) -> tuple[np.ndarray, ExecutionReport]:
    return executor._forward_scalar(x, filters)


register_engine("scalar", _scalar_engine)


def redundant_layer_forward(
    layer,
    x: np.ndarray,
    copies: int = 2,
    max_rollbacks: int = 1,
) -> tuple[np.ndarray, ExecutionReport]:
    """Layer-granularity temporal redundancy with rollback.

    Runs ``layer.forward`` ``copies`` times and compares:

    * ``copies == 2`` (DMR): mismatch triggers a rollback -- both
      executions repeat, up to ``max_rollbacks`` times, after which
      :class:`PersistentFailureError` is raised.
    * ``copies >= 3`` (TMR): element-wise majority voting masks
      disagreement; an element with no majority counts as an error
      and triggers rollback like DMR.

    Comparison and voting run on storage words for floating outputs
    (:mod:`repro.reliable.bits` semantics): two copies that both
    legitimately compute NaN agree instead of rolling back forever,
    and a sign flip on a zero is detected.

    Works on any object with a ``forward(x)`` method (single layers or
    whole :class:`~repro.nn.network.Sequential` models).
    """
    if copies < 2:
        raise ValueError("redundancy needs at least 2 copies")
    # repro: allow[AMBIENT-TIME] -- report metadata only.
    start = time.perf_counter()
    report = ExecutionReport(
        operator_kind=f"layer-{'dmr' if copies == 2 else 'tmr'}"
    )
    attempts = 0
    while True:
        outputs = [layer.forward(x) for _ in range(copies)]
        attempts += 1
        report.operations += copies
        if copies == 2:
            # repro: allow[FLOAT-APPROX] -- operands are int64
            # storage-word views (_comparable_words), so array_equal
            # here *is* the word comparator in array form: identical
            # NaN payloads agree, +0.0/-0.0 disagree.
            agreed = bool(np.array_equal(
                _comparable_words(outputs[0]),
                _comparable_words(outputs[1]),
            ))
            if agreed:
                result = outputs[0]
                break
        else:
            stacked = np.stack(outputs)
            result, all_voted = _elementwise_vote(stacked)
            if all_voted:
                break
        report.errors_detected += 1
        if attempts > max_rollbacks:
            report.persistent_failures += 1
            # repro: allow[AMBIENT-TIME] -- report metadata only.
            report.elapsed_seconds = time.perf_counter() - start
            raise PersistentFailureError(
                "layer-level redundant execution kept disagreeing",
                errors_detected=report.errors_detected,
            )
        report.rollbacks += 1
    # repro: allow[AMBIENT-TIME] -- report metadata only.
    report.elapsed_seconds = time.perf_counter() - start
    return result, report


def _comparable_words(array: np.ndarray) -> np.ndarray:
    """An integer word view of floating arrays (identity otherwise).

    Layer-level comparison/voting must use the same word semantics as
    the operator qualifiers: equal NaN words agree, ``+0.0`` and
    ``-0.0`` disagree.  Non-float outputs compare as themselves.
    """
    array = np.asarray(array)
    if array.dtype.kind == "f":
        return np.ascontiguousarray(array).view(
            np.dtype(f"i{array.dtype.itemsize}")
        )
    return array


def _elementwise_vote(stacked: np.ndarray) -> tuple[np.ndarray, bool]:
    """Majority vote across axis 0; returns (value, unanimous_majority).

    Both paths vote on storage words: the fast path counts word
    agreement with the first copy, the slow path defers to
    :func:`~repro.reliable.voting.majority_vote` (itself word-based),
    so the elected value for an element never depends on which path
    its neighbours forced.
    """
    copies = stacked.shape[0]
    first = stacked[0]
    words = _comparable_words(stacked)
    agree_with_first = (words == words[0][None]).sum(axis=0)
    majority = copies // 2 + 1
    # Fast path: the first copy already holds a majority everywhere.
    if (agree_with_first >= majority).all():
        return first.copy(), True
    # Slow path: vote element by element.
    flat = stacked.reshape(copies, -1)
    out = np.empty(flat.shape[1], dtype=stacked.dtype)
    ok = True
    for idx in range(flat.shape[1]):
        value, agreement = majority_vote(list(flat[:, idx]))
        out[idx] = value
        if agreement < majority:
            ok = False
    return out.reshape(first.shape), ok

"""Vectorized speculate-then-verify reliable execution.

The scalar Algorithm 3 path is paper-faithful and paper-slow: every
multiply-accumulate is a Python call chain through an operator and the
leaky bucket (Table 1: 301.91 s plain / 648.87 s redundant for one
AlexNet conv layer).  This module keeps Algorithm 3's *semantics* --
detection by redundant comparison, operation rollback, leaky-bucket
abort -- while moving the arithmetic where the hardware wants it, the
SIHFT way (duplicate in bulk, check in bulk, repair only where the
check fires):

1. **Speculate.** Run the whole im2col GEMM ``executions_per_op``
   times as NumPy array passes through an
   :class:`~repro.reliable.execution_unit.ArrayExecutionUnit` (DMR =
   2 passes, TMR = 3).  Accumulation is tap-sequential, so every
   output element's float chain is exactly the scalar path's chain.
   A *deterministic* unit provably repeats the same words on every
   pass, so one pass stands in for all of them
   (:func:`_speculative_passes`) -- that is what makes the exact mode
   faster than native redundancy, not just equal to it.
2. **Verify.** Compare the passes element-wise on 64-bit storage
   words (``float64.view(int64)``): DMR word-compare, TMR word-vote
   with the scalar voter's earliest-first tie-break.  Identical NaN
   words agree; ``+0.0`` vs ``-0.0`` disagree -- the same comparator
   the (fixed) scalar operators use.
3. **Repair.** Only disagreeing output elements re-execute through
   the scalar Algorithm 3 rollback path
   (:func:`~repro.reliable.convolution.reliable_convolution`), in
   traversal order, against the *shared per-image leaky bucket*;
   agreed runs leak the bucket in bulk.  Bucket overflow aborts (or
   marks) exactly as the scalar engine would.

Equivalence contract
--------------------
When the operator is one of the built-ins (exact type ``plain`` /
``dmr`` / ``tmr``) and its unit is **deterministic** -- fault-free
built-in arithmetic, or fault injection whose corruption is a pure
function of the value (stuck-at) -- every pass produces identical
words, nothing disagrees, and the engine's outputs, ``ExecutionReport``
counters, abort points and ``failed_outputs`` are **bitwise identical**
to the scalar engine's (``elapsed_seconds`` aside).  That is the
condition :func:`speculation_is_exact` checks and the ``"auto"``
policy requires.

Under *stochastic* array injection (``engine="vectorized"`` with e.g.
a transient fault model) the engine is a different -- equally valid --
sampling of the same fault process: faults corrupt whole speculative
passes, disagreement is detected at output-element granularity (one
detected error + one rollback per disagreeing element feeding the
shared bucket), and the repair re-execution runs the scalar
per-operation loop with the same faulty unit.  Reports stay
stats-compatible (``errors_detected``/``rollbacks``/abort accounting
follow the same bucket), but are not a bit-replay of a scalar run --
per-operation and per-pass fault streams consume randomness
differently by construction.

Operators of unregistered classes, or units with no array form, fall
back to the scalar engine wholesale, so ``engine="vectorized"`` is
always safe to request.
"""

from __future__ import annotations

import time

import numpy as np

from repro.reliable.bits import word_view
from repro.reliable.convolution import ConvolutionStats, reliable_convolution
from repro.reliable.errors import PersistentFailureError
from repro.reliable.execution_unit import ArrayExecutionUnit, as_array_unit
from repro.reliable.executor import (
    ExecutionReport,
    ReliableConv2D,
    _ImageSlice,
    register_engine,
)
from repro.reliable.leaky_bucket import LeakyBucket
from repro.reliable.operators import (
    Operator,
    PlainOperator,
    RedundantOperator,
    TMROperator,
)
from repro.reliable.qualified import QualifiedValue

#: Exact operator types the engine knows how to speculate.  Subclasses
#: are excluded on purpose: they may override multiply/add semantics
#: the speculative passes would silently bypass.
_SPECULATIVE_TYPES = (PlainOperator, RedundantOperator, TMROperator)


def can_speculate(operator: Operator) -> bool:
    """Whether the engine can run this operator speculatively at all
    (built-in operator type and a unit with an array form)."""
    return (
        type(operator) in _SPECULATIVE_TYPES
        and as_array_unit(operator.unit) is not None
    )


def speculation_is_exact(operator: Operator) -> bool:
    """Whether speculation is provably bit-identical to the scalar
    Algorithm 3 path: a speculative operator whose array unit is
    deterministic, so every redundant pass yields the same words and
    the verify step can never fire."""
    if type(operator) not in _SPECULATIVE_TYPES:
        return False
    unit = as_array_unit(operator.unit)
    return unit is not None and unit.deterministic


def _tap_major(patches: np.ndarray) -> np.ndarray:
    """``(n, oh, ow, L)`` patches as contiguous float64
    ``(L, n, oh, ow)``.

    The per-tap slice the speculative pass broadcasts is then a
    contiguous view instead of a strided gather, which is where a
    large-batch pass spends most of its time.  Pure layout change:
    every element holds the same word, so the accumulation chain is
    untouched.
    """
    return patches.transpose(3, 0, 1, 2).astype(np.float64)


def _speculative_pass(
    patches_t: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray,
    unit: ArrayExecutionUnit,
) -> np.ndarray:
    """One full redundant execution of the reliable partition.

    ``patches_t`` is tap-major ``(L, n, oh, ow)`` float64 (see
    :func:`_tap_major`), ``weights`` ``(F, L)``, ``bias`` ``(F,)``.
    Accumulates tap-by-tap -- the vectorisation is across output
    elements, never across the reduction, so each element's operation
    chain (L multiplies, L accumulates, one bias add, in order)
    reproduces the scalar engine's float sequence exactly.  The
    accumulator and product scratch are allocated once and offered to
    the unit via the ``out`` hint (value-identical either way; see
    :class:`~repro.reliable.execution_unit.ArrayExecutionUnit`).
    Returns ``(n, F, oh, ow)`` float64.
    """
    taps, n, oh, ow = patches_t.shape
    n_filters = weights.shape[0]
    acc = np.zeros((n, n_filters, oh, ow), dtype=np.float64)
    scratch = np.empty_like(acc)
    with np.errstate(
        over="ignore", invalid="ignore", divide="ignore", under="ignore"
    ):
        for t in range(taps):
            xt = patches_t[t][:, None]                # (n, 1, oh, ow)
            wt = weights[:, t][None, :, None, None]   # (1, F, 1, 1)
            acc = unit.add(
                acc, unit.multiply(xt, wt, out=scratch), out=acc
            )
        return unit.add(acc, bias[None, :, None, None], out=acc)


def _speculative_passes(
    patches_t: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray,
    unit: ArrayExecutionUnit,
    operator: Operator,
) -> list[np.ndarray]:
    """The redundant executions the verify step compares.

    A deterministic unit provably returns identical words on every
    execution of the same operation, so its ``executions_per_op``
    passes would be bit-for-bit copies and the verify step could never
    fire -- one pass suffices and the others are skipped.  (The
    fast-path report derives its counters from the element count, not
    the pass count, so skipping the copies changes no counter
    either.)  Non-deterministic units -- stochastic fault
    injection under ``engine="vectorized"`` -- keep their real
    per-pass executions, one independent fault stream each.
    """
    n_passes = 1 if unit.deterministic else operator.executions_per_op
    return [
        _speculative_pass(patches_t, weights, bias, unit)
        for _ in range(n_passes)
    ]


def _verify(passes: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Word-compare/vote the speculative passes.

    Returns ``(value, disagree)``: the qualified value per element and
    a mask of elements no pass majority agrees on.  Mirrors the scalar
    qualifiers bit for bit: DMR is a word comparator, TMR a word voter
    with the earliest-pass tie-break of
    :func:`repro.reliable.voting.majority_vote`.
    """
    if len(passes) == 1:
        return passes[0], np.zeros(passes[0].shape, dtype=bool)
    words = [word_view(p) for p in passes]
    if len(passes) == 2:
        return passes[0], words[0] != words[1]
    a01 = words[0] == words[1]
    a02 = words[0] == words[2]
    a12 = words[1] == words[2]
    value = np.where(a01 | a02, passes[0], passes[1])
    return value, ~(a01 | a02 | a12)


def speculative_forward(
    executor: ReliableConv2D,
    x: np.ndarray,
    filters: list[int] | None = None,
) -> tuple[np.ndarray, ExecutionReport]:
    """The ``"vectorized"`` engine for :class:`ReliableConv2D`.

    See the module docstring for the speculate/verify/repair scheme
    and the equivalence contract.  Falls back to the scalar engine
    when the operator/unit pair cannot be speculated.
    """
    operator = executor.operator
    unit = (
        as_array_unit(operator.unit)
        if type(operator) in _SPECULATIVE_TYPES
        else None
    )
    if unit is None:
        return executor._forward_scalar(x, filters)
    # repro: allow[AMBIENT-TIME] -- report metadata only
    # (ExecutionReport.elapsed_seconds); never feeds outputs or
    # qualification decisions.
    start = time.perf_counter()
    patches, wmat, bias, sorted_filters, out, report = executor._prepare(
        x, filters
    )
    n, out_h, out_w, taps = patches.shape
    n_filters = len(sorted_filters)
    stats = ConvolutionStats()
    if n == 0 or n_filters == 0:
        executor._fill_report(report, stats, start)
        return out, report

    patches_t = _tap_major(patches)
    weights64 = wmat[sorted_filters].astype(np.float64)
    bias64 = bias[sorted_filters].astype(np.float64)
    passes = _speculative_passes(
        patches_t, weights64, bias64, unit, operator
    )
    value, disagree = _verify(passes)
    # Store through the same float64 -> float32 cast as the scalar
    # per-element assignment; sNaN carriers signal "invalid" on the
    # narrowing, exactly as the scalar store would quiet them.
    with np.errstate(invalid="ignore", over="ignore"):
        out[:, sorted_filters] = value.astype(np.float32)

    ops_per_element = 2 * taps + 1
    per_image_elements = n_filters * out_h * out_w
    if not disagree.any():
        # Fast path: every element qualified on the first attempt, so
        # the scalar engine would have counted one operation per
        # multiply/accumulate/bias and never touched a bucket level.
        stats.operations = n * per_image_elements * ops_per_element
        report.per_image = [
            ExecutionReport(
                operations=per_image_elements * ops_per_element,
                operator_kind=report.operator_kind,
            )
            for _ in range(n)
        ]
        executor._fill_report(report, stats, start)
        return out, report

    # Repair path: walk disagreeing elements in the scalar engine's
    # traversal order (image -> filter -> row -> column), feeding the
    # shared per-image bucket.  Runs of agreed elements leak the
    # bucket in bulk; each disagreeing element costs one detected
    # error (its speculative attempt) and one rollback, then
    # re-executes through scalar Algorithm 3 with the same bucket.
    for img in range(n):
        image_slice = _ImageSlice(report, stats)
        bucket = LeakyBucket(
            factor=executor.bucket_factor, ceiling=executor.bucket_ceiling
        )
        cursor = 0
        for fi, i, j in np.argwhere(disagree[img]):
            flat = (fi * out_h + i) * out_w + j
            clean = int(flat - cursor)
            if clean:
                stats.operations += clean * ops_per_element
                bucket.record_successes(clean * ops_per_element)
            cursor = int(flat) + 1
            f = sorted_filters[fi]
            stats.operations += 1
            stats.errors_detected += 1
            overflow = bucket.record_error()
            stats.bucket_peak = max(stats.bucket_peak, bucket.level)
            if overflow:
                _persistent_failure(
                    executor, report, stats, start, out, bucket,
                    (img, f, int(i), int(j)),
                    PersistentFailureError(
                        "leaky bucket overflowed: persistent execution "
                        "failure",
                        operations_completed=stats.operations,
                        errors_detected=stats.errors_detected,
                    ),
                )
                continue
            stats.rollbacks += 1
            try:
                result = reliable_convolution(
                    patches[img, i, j],
                    wmat[f],
                    float(bias[f]),
                    operator,
                    bucket=bucket,
                    stats=stats,
                )
                out[img, f, i, j] = result.value
            except PersistentFailureError as error:
                _persistent_failure(
                    executor, report, stats, start, out, bucket,
                    (img, f, int(i), int(j)), error,
                )
        tail = per_image_elements - cursor
        if tail:
            stats.operations += tail * ops_per_element
            bucket.record_successes(tail * ops_per_element)
        report.per_image.append(image_slice.snapshot())
    executor._fill_report(report, stats, start)
    return out, report


def _persistent_failure(
    executor: ReliableConv2D,
    report: ExecutionReport,
    stats: ConvolutionStats,
    start: float,
    out: np.ndarray,
    bucket: LeakyBucket,
    position: tuple[int, int, int, int],
    error: PersistentFailureError,
) -> None:
    """Shared abort handling, identical to the scalar engine's."""
    report.persistent_failures += 1
    if executor.on_persistent_failure == "raise":
        executor._fill_report(report, stats, start)
        raise error
    report.failed_outputs.append(position)
    out[position[0], position[1], position[2], position[3]] = np.nan
    bucket.reset()


def vectorized_reliable_convolution(
    patch,
    weights,
    bias: float,
    operator: Operator,
    bucket: LeakyBucket | None = None,
    stats: ConvolutionStats | None = None,
) -> QualifiedValue:
    """Speculate-then-verify form of one Algorithm 3 output element.

    Drop-in signature twin of
    :func:`~repro.reliable.convolution.reliable_convolution` used by
    the campaign targets: the element's dot product runs as
    ``executions_per_op`` array passes, the results verify on storage
    words, and a disagreement rolls the element back through the
    scalar path against the shared ``bucket``.  Falls back to the
    scalar function entirely when the operator cannot be speculated.
    """
    unit = (
        as_array_unit(operator.unit)
        if type(operator) in _SPECULATIVE_TYPES
        else None
    )
    if unit is None:
        return reliable_convolution(
            patch, weights, bias, operator, bucket=bucket, stats=stats
        )
    patch = np.asarray(patch, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if patch.shape != weights.shape or patch.ndim != 1:
        raise ValueError(
            f"length mismatch: {patch.shape} vs {weights.shape}"
        )
    bucket = bucket if bucket is not None else LeakyBucket()
    stats = stats if stats is not None else ConvolutionStats()
    patches_t = _tap_major(patch.reshape(1, 1, 1, -1))
    wrow = weights.reshape(1, -1)
    brow = np.asarray([bias], dtype=np.float64)
    passes = _speculative_passes(patches_t, wrow, brow, unit, operator)
    value, disagree = _verify(passes)
    ops = 2 * patch.size + 1
    if not disagree[0, 0, 0, 0]:
        stats.operations += ops
        bucket.record_successes(ops)
        return QualifiedValue(float(value[0, 0, 0, 0]), True)
    stats.operations += 1
    stats.errors_detected += 1
    overflow = bucket.record_error()
    stats.bucket_peak = max(stats.bucket_peak, bucket.level)
    if overflow:
        raise PersistentFailureError(
            "leaky bucket overflowed: persistent execution failure",
            operations_completed=stats.operations,
            errors_detected=stats.errors_detected,
        )
    stats.rollbacks += 1
    return reliable_convolution(
        patch, weights, bias, operator, bucket=bucket, stats=stats
    )


register_engine("vectorized", speculative_forward)

"""SEC-DED error-correcting storage for weights.

Paper Section II.C: "GPU manufacturers have begun implementing error
correcting codes in RAM storage and data paths" -- ECC is the
industry answer to the *data corruption* half of the paper's threat
model ("data corruption of the weights and input data").  This module
implements an extended Hamming(39,32) code -- single-error correction,
double-error detection (SEC-DED), the standard memory-protection
geometry -- over the 32-bit words of a float32 tensor.

Layout: codeword bits are indexed 0..38; bit 0 is the overall parity
(the SEC-DED extension), bits at positions 1, 2, 4, 8, 16, 32 are the
Hamming parity bits, and the remaining 32 positions carry data bits.

The point in this repository: ECC protects weights *at rest* but not
the arithmetic, while redundant execution protects arithmetic but not
storage.  The memory-protection workflow shows the two compose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_N_POSITIONS = 39  # 1 overall parity + 6 Hamming parity + 32 data
_PARITY_POSITIONS = (1, 2, 4, 8, 16, 32)
_DATA_POSITIONS = tuple(
    p for p in range(1, _N_POSITIONS) if p not in _PARITY_POSITIONS
)
assert len(_DATA_POSITIONS) == 32

# For Hamming parity i, the mask of covered positions (all positions
# whose index has bit i set, including the parity position itself).
_COVER_MASKS = tuple(
    np.uint64(sum(
        1 << pos
        for pos in range(1, _N_POSITIONS)
        if pos & parity_pos
    ))
    for parity_pos in _PARITY_POSITIONS
)
_ALL_MASK = np.uint64((1 << _N_POSITIONS) - 1)


def encode_words(data: np.ndarray) -> np.ndarray:
    """Encode uint32 data words into uint64 SEC-DED codewords."""
    data = np.asarray(data, dtype=np.uint32)
    code = np.zeros(data.shape, dtype=np.uint64)
    wide = data.astype(np.uint64)
    for bit, pos in enumerate(_DATA_POSITIONS):
        code |= ((wide >> np.uint64(bit)) & np.uint64(1)) << np.uint64(pos)
    for mask, parity_pos in zip(_COVER_MASKS, _PARITY_POSITIONS):
        parity = np.bitwise_count(code & mask) & np.uint64(1)
        code |= parity << np.uint64(parity_pos)
    overall = np.bitwise_count(code) & np.uint64(1)
    code |= overall  # bit 0
    return code


@dataclass
class DecodeReport:
    """Outcome counters of one decode pass."""

    corrected: int = 0
    uncorrectable: int = 0
    uncorrectable_indices: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.corrected == 0 and self.uncorrectable == 0


def decode_words(code: np.ndarray) -> tuple[np.ndarray, DecodeReport]:
    """Decode codewords: correct single-bit errors, flag double-bit.

    Returns ``(data, report)``; words flagged uncorrectable decode to
    their (corrupt) data bits -- the caller must treat them as lost.
    """
    code = np.asarray(code, dtype=np.uint64).copy()
    syndrome = np.zeros(code.shape, dtype=np.uint64)
    for bit, mask in enumerate(_COVER_MASKS):
        # Each cover set (data + its parity bit) has even parity in a
        # clean codeword; odd parity marks check `bit` as failed.
        failed = np.bitwise_count(code & mask) & np.uint64(1)
        syndrome |= failed << np.uint64(bit)
    overall_parity = np.bitwise_count(code & _ALL_MASK) & np.uint64(1)

    report = DecodeReport()
    flat_code = code.reshape(-1)
    flat_syndrome = syndrome.reshape(-1)
    odd = overall_parity.reshape(-1) == 1
    # Whole-array syndrome classification (one pass per class instead
    # of a Python loop per word):
    #   odd overall parity  -> single-bit error at position s when the
    #     syndrome addresses a codeword bit (s == 0 is the overall
    #     parity bit itself), uncorrectable when it does not;
    #   even overall parity with nonzero syndrome -> double-bit error.
    addressable = flat_syndrome < _N_POSITIONS
    single = odd & addressable
    flat_code[single] ^= np.uint64(1) << flat_syndrome[single]
    report.corrected = int(single.sum())
    uncorrectable = (odd & ~addressable) | (~odd & (flat_syndrome != 0))
    indices = np.nonzero(uncorrectable)[0]
    report.uncorrectable = int(len(indices))
    # nonzero scans in flat order, matching the historical per-word
    # append order.
    report.uncorrectable_indices = [int(i) for i in indices]

    data = np.zeros(code.shape, dtype=np.uint32)
    wide = np.zeros(code.shape, dtype=np.uint64)
    for bit, pos in enumerate(_DATA_POSITIONS):
        wide |= ((code >> np.uint64(pos)) & np.uint64(1)) << np.uint64(bit)
    data = wide.astype(np.uint32)
    return data, report


class ECCProtectedTensor:
    """A float32 tensor stored under SEC-DED codewords.

    The write path encodes; :meth:`read` decodes with correction.
    :meth:`flip_stored_bit` models an SEU in the memory array (any of
    the 39 codeword bits, parity included -- real upsets do not
    respect the data/parity distinction).
    """

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float32)
        self.shape = values.shape
        self._code = encode_words(values.view(np.uint32)).reshape(-1)

    @property
    def n_words(self) -> int:
        return self._code.size

    def flip_stored_bit(self, word_index: int, bit: int) -> None:
        """Flip one stored codeword bit (0..38)."""
        if not 0 <= word_index < self.n_words:
            raise IndexError("word_index out of range")
        if not 0 <= bit < _N_POSITIONS:
            raise ValueError(f"bit must be in [0, {_N_POSITIONS})")
        self._code[word_index] ^= np.uint64(1 << bit)

    def inject_random_flips(
        self, n_flips: int, rng: np.random.Generator
    ) -> list[tuple[int, int]]:
        """Flip ``n_flips`` uniformly random stored bits."""
        flips = []
        for _ in range(n_flips):
            word = int(rng.integers(0, self.n_words))
            bit = int(rng.integers(0, _N_POSITIONS))
            self.flip_stored_bit(word, bit)
            flips.append((word, bit))
        return flips

    def read(self) -> tuple[np.ndarray, DecodeReport]:
        """Decode the stored tensor; single-bit upsets are corrected
        in the returned copy (the stored codewords are scrubbed too,
        modelling a read-scrub memory controller)."""
        data, report = decode_words(self._code)
        if report.corrected:
            self._code = encode_words(data)  # scrub
        values = data.astype(np.uint32).view(np.float32)
        return values.reshape(self.shape).copy(), report

"""The :class:`HybridPipeline` facade and config-driven factory.

This module is the canonical entry point for hybrid inference:

>>> from repro.api import PipelineConfig, build_pipeline
>>> pipeline = build_pipeline(PipelineConfig(architecture="integrated"),
...                           model)
>>> batch = pipeline.infer_batch(images)
>>> batch.decision_counts
{'confirmed': 30, 'rejected_by_qualifier': 2, ...}

Construction is driven entirely by :class:`~repro.api.config.
PipelineConfig`; the architecture, qualifier, operator and baseline
axes resolve through the registries in :mod:`repro.api.registry`, so
new scenarios extend the system without touching ``repro.core``.
"""

from __future__ import annotations

import inspect
import time
from collections import deque
from collections.abc import Iterable, Iterator

import numpy as np

from repro.api.config import (
    Architecture,
    PartitionConfig,
    PipelineConfig,
    QualifierConfig,
    ServingConfig,
)
from repro.api.registry import ARCHITECTURES, BASELINES, OPERATORS, QUALIFIERS
from repro.api.results import BatchResult
from repro.core.hybrid import (
    HybridResult,
    IntegratedHybridCNN,
    ParallelHybridCNN,
)
from repro.core.qualifier import ShapeQualifier
from repro.nn.layers.conv import Conv2D
from repro.nn.network import Sequential
from repro.reliable.operators import Operator
from repro.vision.filters import sobel_axis_stack

# ---------------------------------------------------------------------------
# Built-in registrations
# ---------------------------------------------------------------------------


@QUALIFIERS.register("shape")
def _build_shape_qualifier(config: QualifierConfig) -> ShapeQualifier:
    return ShapeQualifier(
        shape=config.shape,
        word_length=config.word_length,
        alphabet_size=config.alphabet_size,
        threshold=config.threshold,
        redundant=config.redundant,
        edge_threshold=config.edge_threshold,
        n_samples=config.n_samples,
        engine=config.engine,
    )


@ARCHITECTURES.register("parallel")
def _build_parallel(
    model: Sequential, qualifier, config: PipelineConfig
) -> ParallelHybridCNN:
    return ParallelHybridCNN(model, qualifier, config.safety_class)


@ARCHITECTURES.register("integrated")
def _build_integrated(
    model: Sequential, qualifier, config: PipelineConfig
) -> IntegratedHybridCNN:
    partition = (config.partition or PartitionConfig()).to_partition()
    return IntegratedHybridCNN(
        model, qualifier, config.safety_class, partition
    )


# ---------------------------------------------------------------------------
# Component factories
# ---------------------------------------------------------------------------


def build_qualifier(config: QualifierConfig):
    """Instantiate the qualifier a config describes (via the
    :data:`~repro.api.registry.QUALIFIERS` registry)."""
    return QUALIFIERS.get(config.kind)(config)


def build_operator(kind: str, unit=None) -> Operator:
    """Instantiate a redundancy operator by registry key."""
    return OPERATORS.get(kind)(unit)


def build_baseline(name: str, model: Sequential, **kwargs):
    """Instantiate a protection baseline (``"ranger"``, ``"caging"``,
    or any registered extension) around ``model``."""
    return BASELINES.get(name)(model, **kwargs)


def _pin_sobel_filters(model: Sequential, config: PipelineConfig) -> None:
    """Pin Sobel-x/-y into the first two reliable filters."""
    # Pinning mutates the trained conv1 in place, so it is only
    # meaningful for architectures whose in-network dependable
    # partition consumes the pinned filters.  "parallel" qualifies the
    # raw image and never reads the partition -- pinning there would
    # silently degrade the classifier for nothing.
    if config.architecture == Architecture.PARALLEL.value:
        raise ValueError(
            "pin_sobel is meaningless for the 'parallel' architecture: "
            "its qualifier runs on the raw image, so pinning would only "
            "overwrite trained filters"
        )
    if (
        config.partition is None
        and config.architecture != Architecture.INTEGRATED.value
    ):
        raise ValueError(
            f"pin_sobel with architecture {config.architecture!r} "
            "requires an explicit partition: only an in-network "
            "dependable partition consumes pinned filters"
        )
    layer_name = (
        config.partition.bifurcation_layer if config.partition else "conv1"
    )
    layer = model.layer(layer_name)
    if not isinstance(layer, Conv2D):
        raise TypeError(
            f"pin_sobel requires a Conv2D at {layer_name!r}, "
            f"got {type(layer).__name__}"
        )
    filters = (
        config.partition.reliable_filters[layer_name]
        if config.partition
        else (0, 1)
    )
    if len(filters) < 2:
        # A single directional filter leaves gaps in contours parallel
        # to its direction (see ShapeQualifier.check_feature_map);
        # silently pinning only Sobel-x would degrade the qualifier
        # while the config reads as the paper's x/y pair.
        raise ValueError(
            "pin_sobel needs at least two reliable filters on "
            f"{layer_name!r} (one per Sobel axis); the partition "
            f"lists {filters}"
        )
    for index, axis in zip(filters[:2], ("x", "y")):
        layer.set_filter(
            index,
            sobel_axis_stack(axis, layer.kernel_size, layer.in_channels),
        )


def build_pipeline(
    config: PipelineConfig, model: Sequential
) -> HybridPipeline:
    """Wire a :class:`HybridPipeline` around a trained model.

    The config supplies everything but the weights: the architecture
    builder comes from :data:`~repro.api.registry.ARCHITECTURES`, the
    qualifier from :data:`~repro.api.registry.QUALIFIERS`, and
    ``pin_sobel=True`` applies the paper's Sobel pre-initialisation to
    the dependable filters before the hybrid is assembled.
    """
    if not isinstance(config, PipelineConfig):
        raise TypeError(
            f"expected a PipelineConfig, got {type(config).__name__}"
        )
    if config.pin_sobel:
        _pin_sobel_filters(model, config)
    qualifier = build_qualifier(config.qualifier)
    hybrid = ARCHITECTURES.get(config.architecture)(
        model, qualifier, config
    )
    return HybridPipeline(hybrid, config)


# ---------------------------------------------------------------------------
# The facade
# ---------------------------------------------------------------------------


class HybridPipeline:
    """Batch-first facade over a constructed hybrid.

    Wraps whichever architecture the config selected behind three
    uniform entry points -- :meth:`infer`, :meth:`infer_batch` and
    :meth:`infer_stream` -- and decorates batched runs with the
    aggregates of :class:`~repro.api.results.BatchResult`.

    Attributes
    ----------
    hybrid:
        The underlying architecture object (e.g.
        :class:`~repro.core.hybrid.ParallelHybridCNN`); exposed for
        callers that need architecture-specific hooks such as fault
        injection into the reliable executor.
    config:
        The :class:`~repro.api.config.PipelineConfig` it was built
        from.
    """

    def __init__(self, hybrid, config: PipelineConfig) -> None:
        self.hybrid = hybrid
        self.config = config

    # -- delegated component access --------------------------------------
    @property
    def model(self) -> Sequential:
        return self.hybrid.model

    @property
    def qualifier(self):
        return self.hybrid.qualifier

    @property
    def safety_class(self) -> int:
        # From the config, not the hybrid's internals: custom
        # registered architectures need not expose a result_block.
        return self.config.safety_class

    @property
    def supports_qualifier_views(self) -> bool:
        """True when the architecture qualifies a separate view of the
        scene (its ``infer`` accepts ``qualifier_view``); integrated
        hybrids qualify the bifurcated feature map instead.  Probed by
        capability, not by type, so registered custom architectures
        participate.
        """
        try:
            parameters = inspect.signature(self.hybrid.infer).parameters
        except (TypeError, ValueError):
            return False
        return "qualifier_view" in parameters

    # -- inference -------------------------------------------------------
    def infer(
        self,
        image: np.ndarray,
        qualifier_view: np.ndarray | None = None,
    ) -> HybridResult:
        """Classify one ``(3, h, w)`` image."""
        if qualifier_view is not None:
            self._require_view_support()
            return self.hybrid.infer(image, qualifier_view=qualifier_view)
        return self.hybrid.infer(image)

    def infer_batch(
        self,
        images: np.ndarray,
        qualifier_views: np.ndarray | None = None,
    ) -> BatchResult:
        """Classify ``(n, 3, h, w)`` images in one vectorised pass.

        Both halves of the work are batched: the CNN runs as a single
        :meth:`~repro.nn.network.Sequential.forward` and the
        dependable path through the batched qualifier engine
        (:meth:`~repro.core.qualifier.ShapeQualifier.check_batch`).
        Probabilities, verdicts and decisions are bitwise identical to
        n :meth:`infer` calls (see
        ``benchmarks/test_batch_inference.py`` and
        ``tests/core/test_qualifier_batch.py``).
        """
        start = time.perf_counter()
        if qualifier_views is not None:
            self._require_view_support()
            results = self.hybrid.infer_batch(
                images, qualifier_views=qualifier_views
            )
        else:
            results = self.hybrid.infer_batch(images)
        return BatchResult(
            results, elapsed_seconds=time.perf_counter() - start
        )

    def infer_stream(
        self,
        images: Iterable[np.ndarray],
        batch_size: int = 32,
        max_wait_ms: float = 0.0,
    ) -> Iterator[HybridResult]:
        """Lazily classify an image stream through the micro-batcher.

        Yields one :class:`~repro.core.hybrid.HybridResult` per image
        while keeping at most ``2 * batch_size`` requests in flight --
        the serving shape for an unbounded camera feed.  The stream is
        served by a private :class:`~repro.serving.server.
        PipelineServer` (``max_batch=batch_size``), so streaming uses
        the same fully batched engines -- and carries the same bitwise
        parity with per-image :meth:`infer` calls -- as
        :meth:`infer_batch` and concurrent serving.

        **Ordering guarantee**: results are yielded in submission
        order, unconditionally.  Each submission's pending handle is
        enqueued FIFO and the stream blocks on the *oldest* handle, so
        even if micro-batches were to complete out of order (several
        in flight, uneven flush sizes, a later batch finishing first),
        a later image's result is never yielded before an earlier
        image's.  ``tests/serving/test_stream.py`` pins this.

        ``max_wait_ms`` bounds how long the batcher waits to fill a
        flush; the default of 0 never waits on the producer (an
        exhausted iterator still drains promptly), trading realized
        batch size for latency only when the producer is slower than
        inference.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        from repro.serving import PipelineServer

        config = ServingConfig(
            max_batch=batch_size,
            max_wait_ms=max_wait_ms,
            queue_capacity=2 * batch_size,
            overflow="block",
        )
        pending: deque = deque()
        with PipelineServer(self, config) as server:
            for image in images:
                pending.append(
                    server.submit(np.asarray(image, dtype=np.float32))
                )
                # Bound in-flight work: the queue holds at most
                # 2 * batch_size and we hold handles for the rest.
                while len(pending) > 2 * batch_size:
                    yield pending.popleft().result()
            while pending:
                yield pending.popleft().result()

    def serve(
        self,
        config: ServingConfig | None = None,
        on_degraded=None,
    ):
        """Construct a :class:`~repro.serving.server.PipelineServer`
        around this pipeline (not yet started -- use ``with
        pipeline.serve(...) as server:`` or call ``start()``).

        The server owns the pipeline while running: all inference goes
        through its single batcher thread, which is what keeps the
        stateful model/qualifier internals single-writer and the
        per-request results bitwise identical to serial :meth:`infer`
        calls.  See ``docs/serving.md``.
        """
        from repro.serving import PipelineServer

        return PipelineServer(self, config, on_degraded=on_degraded)

    def _require_view_support(self) -> None:
        if not self.supports_qualifier_views:
            raise ValueError(
                f"architecture {self.config.architecture!r} qualifies "
                "the bifurcated feature map; it does not accept a "
                "separate qualifier view"
            )

    def __repr__(self) -> str:
        return (
            f"HybridPipeline({self.config.name!r}, "
            f"architecture={self.config.architecture!r}, "
            f"safety_class={self.safety_class})"
        )

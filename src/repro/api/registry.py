"""String-keyed component registries for the pipeline layer.

Every extensible axis of the hybrid pipeline -- architecture,
qualifier, redundancy operator, protection baseline -- is a
:class:`Registry` of named builders.  New scenarios plug in with the
:meth:`Registry.register` decorator instead of editing ``repro.core``:

>>> from repro.api import ARCHITECTURES
>>> @ARCHITECTURES.register("shadow")
... def build_shadow(model, qualifier, config):
...     return ShadowHybrid(model, qualifier, config.safety_class)

after which ``PipelineConfig(architecture="shadow")`` builds through
:func:`repro.api.pipeline.build_pipeline` like the built-ins.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Any, TypeVar

T = TypeVar("T", bound=Callable[..., Any])


class RegistryError(KeyError):
    """Unknown or duplicate registry key."""


class Registry:
    """A named mapping from string keys to builder callables.

    Parameters
    ----------
    kind:
        Human-readable name of the axis (``"architecture"``, ...);
        appears in error messages so a typo'd config names the axis it
        failed on.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Callable[..., Any]] = {}

    def register(
        self, name: str, builder: Callable[..., Any] | None = None,
        *, overwrite: bool = False,
    ):
        """Register ``builder`` under ``name``.

        Usable as a decorator (``@REG.register("name")``) or a plain
        call (``REG.register("name", builder)``).  Re-registering an
        existing key raises unless ``overwrite=True`` -- silent
        shadowing of a built-in is almost always a bug.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} key must be a non-empty string")

        def decorate(obj: T) -> T:
            if name in self._entries and not overwrite:
                raise RegistryError(
                    f"{self.kind} {name!r} is already registered; "
                    "pass overwrite=True to replace it"
                )
            self._entries[name] = obj
            return obj

        if builder is None:
            return decorate
        return decorate(builder)

    def get(self, name: str) -> Callable[..., Any]:
        """Look up a builder; unknown keys list the registered names."""
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; "
                f"registered: {sorted(self._entries)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {self.names()})"


#: Hybrid architectures: ``builder(model, qualifier, config) -> hybrid``.
#: The built-ins (``"parallel"``, ``"integrated"``) are registered in
#: :mod:`repro.api.pipeline`.
ARCHITECTURES = Registry("architecture")

#: Qualifier families: ``builder(qualifier_config) -> qualifier``.
QUALIFIERS = Registry("qualifier")


class _TableView(Registry):
    """Live registry *view* over an external factory table.

    Some axes keep their single source of truth in ``repro.reliable``
    (operators behind :func:`repro.reliable.operators.make_operator`,
    engines behind :func:`repro.reliable.executor.engine_fn`); these
    views delegate every read and funnel registration into that table,
    so either entry point sees the other's registrations.  Subclasses
    supply the three delegates; the table functions raise
    ``ValueError`` on unknown/duplicate names, translated here to
    :class:`RegistryError`.
    """

    def _table_register(self, name: str, obj, overwrite: bool):
        raise NotImplementedError

    def _table_get(self, name: str):
        raise NotImplementedError

    def _table_names(self) -> list[str]:
        raise NotImplementedError

    def register(self, name, builder=None, *, overwrite=False):
        def decorate(obj):
            try:
                self._table_register(name, obj, overwrite)
            except ValueError as error:
                raise RegistryError(str(error)) from None
            return obj

        if builder is None:
            return decorate
        return decorate(builder)

    def get(self, name: str):
        try:
            return self._table_get(name)
        except ValueError as error:
            raise RegistryError(str(error)) from None

    def names(self) -> list[str]:
        return self._table_names()

    def __contains__(self, name: object) -> bool:
        return name in self.names()

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(self.names())


class _OperatorRegistry(_TableView):
    """View over the operator factory table: a kind registered through
    either entry point is reachable from every kind-string surface --
    ``build_operator``, ``ReliableConv2D(operator="<kind>")`` and
    ``PartitionConfig(redundancy="<kind>")``."""

    def _table_register(self, name, cls, overwrite):
        from repro.reliable.operators import register_operator

        register_operator(name, cls, overwrite=overwrite)

    def _table_get(self, name):
        from repro.reliable.operators import _operator_class

        return _operator_class(name)

    def _table_names(self):
        from repro.reliable.operators import operator_kinds

        return operator_kinds()


#: Redundancy operators: ``builder(unit=None) -> Operator``.  Seeded
#: from :mod:`repro.reliable.operators` below; additions propagate
#: back to that module's factory table.
OPERATORS = _OperatorRegistry("operator")


class _EngineRegistry(_TableView):
    """View over the reliable-execution engine table: an engine
    registered through either entry point is selectable via
    ``ReliableConv2D(engine="<name>")`` and
    ``PartitionConfig(engine="<name>")``.  ``"auto"`` is the selection
    policy, not a table entry."""

    def _table_register(self, name, fn, overwrite):
        from repro.reliable.executor import register_engine

        register_engine(name, fn, overwrite=overwrite)

    def _table_get(self, name):
        from repro.reliable.executor import engine_fn

        return engine_fn(name)

    def _table_names(self):
        from repro.reliable.executor import engine_names

        return engine_names()


#: Reliable-execution engines: ``engine(executor, x, filters) ->
#: (output, report)``.  Built-ins: ``"scalar"`` (paper-literal
#: Algorithm 3 loop) and ``"vectorized"`` (speculate-then-verify,
#: :mod:`repro.reliable.vectorized`).
ENGINES = _EngineRegistry("engine")

#: Protection baselines the paper compares against:
#: ``builder(model, **kwargs) -> guard``.
BASELINES = Registry("baseline")

#: Campaign targets: per-trial experiment runners for the parallel
#: fault-campaign engine, ``runner(TrialContext) -> TrialRecord``.
#: The built-ins (``"reliable_conv"``, ``"baseline"``, ``"pipeline"``,
#: ``"checkpoint_segment"``) are registered by
#: :mod:`repro.campaigns.targets`, which every engine entry point
#: imports; register extensions with the usual decorator and select
#: them via ``CampaignSpec(target="<name>")``.
CAMPAIGN_TARGETS = Registry("campaign target")


def _seed_builtin_baselines() -> None:
    from repro.baselines import ActivationRangeGuard, OutputCage

    # "ranger" is the activation-range supervision of the paper's
    # ref [28]; "caging" the output-feasibility check of ref [27].
    BASELINES.register("ranger", ActivationRangeGuard)
    BASELINES.register("caging", OutputCage)


_seed_builtin_baselines()

"""Declarative configuration for the hybrid pipeline.

Three dataclasses describe everything :func:`repro.api.build_pipeline`
needs beyond trained weights: which architecture, which qualifier,
which reliable partition.  All of them validate eagerly in
``__post_init__`` and round-trip losslessly through
``to_dict``/``from_dict`` so a pipeline's wiring can live in JSON next
to its weights.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import asdict, dataclass, field, fields

from repro.core.partition import HybridPartition

#: Index of the synthetic dataset's "Stop" sign -- the paper's
#: safety-critical class (see :data:`repro.data.STOP_CLASS_INDEX`).
DEFAULT_SAFETY_CLASS = 0


class Architecture(str, enum.Enum):
    """The two hybrid shapes of the paper (Figures 1 and 2).

    The enum names the built-ins; the :data:`~repro.api.ARCHITECTURES`
    registry accepts additional keys beyond these.
    """

    PARALLEL = "parallel"
    INTEGRATED = "integrated"


class Redundancy(str, enum.Enum):
    """Redundant-execution flavours of the reliable partition."""

    DMR = "dmr"
    TMR = "tmr"


def _check_no_unknown_keys(cls, data: dict) -> None:
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"{cls.__name__}: unknown keys {sorted(unknown)}; "
            f"expected a subset of {sorted(known)}"
        )


@dataclass(frozen=True, kw_only=True)
class QualifierConfig:
    """How to build the dependable shape qualifier.

    ``kind`` selects a builder from :data:`repro.api.QUALIFIERS`
    (``"shape"`` is the built-in SAX octagon detector); the remaining
    fields mirror :class:`repro.core.qualifier.ShapeQualifier`.
    ``engine`` selects the batched-qualification strategy (``"auto"``
    runs the vectorized engine of :mod:`repro.core.qualifier_batch`
    exactly when it is provably bit-identical to per-image scalar
    calls, mirroring :class:`PartitionConfig.engine`).
    """

    kind: str = "shape"
    shape: str = "octagon"
    word_length: int = 32
    alphabet_size: int = 8
    threshold: float = 3.0
    redundant: bool = True
    edge_threshold: float | None = None
    n_samples: int = 128
    engine: str = "auto"

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("qualifier kind must be non-empty")
        if self.word_length <= 0:
            raise ValueError("word_length must be positive")
        if self.alphabet_size < 2:
            raise ValueError("alphabet_size must be at least 2")
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.n_samples < self.word_length:
            raise ValueError(
                "n_samples must be at least word_length "
                f"({self.n_samples} < {self.word_length})"
            )
        # Late import: repro.core.qualifier depends on repro.sax only,
        # but keeping the canonical engine list there avoids a second
        # source of truth.
        from repro.core.qualifier import QUALIFIER_ENGINES

        if self.engine not in QUALIFIER_ENGINES:
            raise ValueError(
                f"unknown qualifier engine {self.engine!r}; "
                f"choose one of {QUALIFIER_ENGINES}"
            )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> QualifierConfig:
        _check_no_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True, kw_only=True)
class PartitionConfig:
    """Which filters execute reliably (integrated hybrid only).

    A serialisable twin of :class:`repro.core.partition.HybridPartition`
    -- same defaults (Sobel-x/-y of ``conv1`` under DMR with the
    ``"auto"`` execution engine), same validation, plus dict
    round-tripping.  :meth:`to_partition` produces the core object.
    ``engine`` selects the reliable-execution strategy by
    ``repro.api.ENGINES`` key (``"auto"`` picks the vectorized
    speculate-then-verify engine whenever its result is provably
    bit-identical to the scalar Algorithm 3 loop).
    """

    reliable_filters: dict[str, tuple[int, ...]] = field(
        default_factory=lambda: {"conv1": (0, 1)}
    )
    bifurcation_layer: str = "conv1"
    redundancy: str = Redundancy.DMR.value
    engine: str = "auto"

    def __post_init__(self) -> None:
        # Normalise JSON-style lists to tuples so equality (and thus
        # from_dict(to_dict(c)) == c) holds regardless of source.
        object.__setattr__(
            self,
            "reliable_filters",
            {
                name: tuple(int(f) for f in filters)
                for name, filters in self.reliable_filters.items()
            },
        )
        if isinstance(self.redundancy, Redundancy):
            object.__setattr__(self, "redundancy", self.redundancy.value)
        # Reuse the core validation rules by constructing the twin.
        self.to_partition()

    def to_partition(self) -> HybridPartition:
        return HybridPartition(
            reliable_filters=dict(self.reliable_filters),
            bifurcation_layer=self.bifurcation_layer,
            redundancy=self.redundancy,
            engine=self.engine,
        )

    def to_dict(self) -> dict:
        return {
            "reliable_filters": {
                name: list(filters)
                for name, filters in self.reliable_filters.items()
            },
            "bifurcation_layer": self.bifurcation_layer,
            "redundancy": self.redundancy,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: dict) -> PartitionConfig:
        _check_no_unknown_keys(cls, data)
        return cls(**data)


#: Backpressure policies of the serving queue.
SERVING_OVERFLOW_POLICIES = ("block", "reject")

#: Response-cache modes of the serving layer (see
#: :mod:`repro.serving.cache`): ``"off"`` disables caching entirely,
#: ``"lru"`` enables the content-addressed LRU result store with
#: in-flight coalescing.
SERVING_CACHE_MODES = ("off", "lru")


@dataclass(frozen=True, kw_only=True)
class ServingConfig:
    """Micro-batching and backpressure knobs for
    :class:`~repro.serving.server.PipelineServer`.

    Attributes
    ----------
    max_batch:
        Flush a forming micro-batch as soon as it holds this many
        requests.  The upper bound of the realized batch size; match
        it to the throughput sweet spot of ``infer_batch``.
    max_wait_ms:
        Flush no later than this many milliseconds after the oldest
        request in the forming batch -- the latency bound a
        half-empty batch is allowed to cost.  ``0`` disables the wait
        entirely: each flush takes only what is already queued.
    queue_capacity:
        Bound of the submission queue (requests accepted but not yet
        batched).  The backpressure reservoir: bigger absorbs burstier
        traffic, smaller bounds memory and queueing delay.
    overflow:
        What a full queue does to ``submit()``: ``"block"`` waits (up
        to ``submit_timeout_s``), ``"reject"`` raises
        :class:`~repro.serving.server.ServerOverloaded` immediately.
    submit_timeout_s:
        Longest a blocking ``submit()`` may wait on a full queue
        before raising (None: wait indefinitely).  Ignored under
        ``"reject"``.
    latency_window:
        How many recent completions feed the p50/p99 latency
        percentiles of :meth:`~repro.serving.server.PipelineServer.
        stats`.
    cache:
        Response-cache mode (:data:`SERVING_CACHE_MODES`).  ``"off"``
        (default) serves every request through the batcher; ``"lru"``
        puts a content-addressed result store in front of it, keyed by
        ``(sha256(image storage bytes + shape + dtype),
        PipelineConfig.content_hash())``, with single-flight in-flight
        coalescing -- safe because results are bitwise-deterministic
        per key (see ``docs/serving.md``).  Individual submissions may
        opt out via ``submit(..., use_cache=False)``.
    cache_max_entries:
        Bound of the LRU result store (ignored under ``cache="off"``).
        Least-recently-used entries evict beyond it.
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0
    queue_capacity: int = 256
    overflow: str = "block"
    submit_timeout_s: float | None = None
    latency_window: int = 2048
    cache: str = "off"
    cache_max_entries: int = 1024

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.queue_capacity < self.max_batch:
            raise ValueError(
                "queue_capacity must be at least max_batch "
                f"({self.queue_capacity} < {self.max_batch}); a queue "
                "smaller than one batch can never fill a flush"
            )
        if self.overflow not in SERVING_OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {self.overflow!r}; choose "
                f"one of {SERVING_OVERFLOW_POLICIES}"
            )
        if self.submit_timeout_s is not None and self.submit_timeout_s < 0:
            raise ValueError("submit_timeout_s must be non-negative")
        if self.latency_window <= 0:
            raise ValueError("latency_window must be positive")
        if self.cache not in SERVING_CACHE_MODES:
            raise ValueError(
                f"unknown cache mode {self.cache!r}; choose one of "
                f"{SERVING_CACHE_MODES}"
            )
        if self.cache_max_entries <= 0:
            raise ValueError("cache_max_entries must be positive")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> ServingConfig:
        _check_no_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True, kw_only=True)
class ChaosConfig:
    """Planned service-level fault load for one chaos experiment
    (see :mod:`repro.chaos`).

    Each count is the number of fault events of that type the
    :class:`~repro.chaos.faults.ServiceFaultInjector` schedules; the
    schedule itself (event order, delays, corrupted request indices,
    flipped bits) is drawn deterministically from the experiment's
    explicit random stream, never from ambient state.

    Attributes
    ----------
    latency_spikes:
        Server-side flushes delayed by roughly ``latency_ms`` (the
        exact delay per spike is drawn from the stream) -- absorbable:
        results are unaffected, only latency moves.
    latency_ms:
        Nominal latency-spike magnitude in milliseconds.
    timeouts:
        Server-side flushes that fail with
        :class:`~repro.chaos.faults.ChaosTimeout` (a hung dependency
        surfacing as an explicit timeout) -- every request in the
        flush group completes with the error.
    batcher_crashes:
        Server-side flushes that raise
        :class:`~repro.serving.server.BatcherCrash`, killing the
        batcher thread; the experiment driver restarts the server and
        carries on (the restart-accounting path under test).
    queue_exhaustion_bursts:
        Client-side burst phases that deterministically fill the
        bounded queue while the batcher is held mid-flush, then submit
        ``burst_overflow`` more -- each burst must produce exactly
        ``burst_overflow`` explicit rejections (requires
        ``overflow="reject"``).
    burst_overflow:
        Submissions past queue capacity per exhaustion burst; also the
        exact expected rejection count per burst.
    corrupt_payloads:
        Requests whose image payload gets ``corrupt_bits`` random
        storage-bit flips *before* submission.  Parity is then judged
        against a serial ``infer()`` of the corrupted payload -- the
        server must serve what it was given, bit-for-bit.
    corrupt_bits:
        Storage bits flipped per corrupted payload.
    stall_timeout_s:
        Upper bound on any injector-held stall (exhaustion bursts park
        the batcher inside a flush); the gate self-releases after this
        long so an orphaned experiment can never hang the server.
    """

    latency_spikes: int = 0
    latency_ms: float = 5.0
    timeouts: int = 0
    batcher_crashes: int = 0
    queue_exhaustion_bursts: int = 0
    burst_overflow: int = 3
    corrupt_payloads: int = 0
    corrupt_bits: int = 1
    stall_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        for name in (
            "latency_spikes",
            "timeouts",
            "batcher_crashes",
            "queue_exhaustion_bursts",
            "corrupt_payloads",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.latency_ms < 0:
            raise ValueError("latency_ms must be non-negative")
        if self.burst_overflow < 1:
            raise ValueError("burst_overflow must be at least 1")
        if self.corrupt_bits < 1:
            raise ValueError("corrupt_bits must be at least 1")
        if self.stall_timeout_s <= 0:
            raise ValueError("stall_timeout_s must be positive")

    @property
    def server_events(self) -> int:
        """Planned server-side (per-flush) fault events."""
        return self.latency_spikes + self.timeouts + self.batcher_crashes

    @property
    def total_events(self) -> int:
        """All planned fault events across both seams."""
        return (
            self.server_events
            + self.queue_exhaustion_bursts
            + self.corrupt_payloads
        )

    @property
    def disruptive_events(self) -> int:
        """Events expected to surface as explicit request failures or
        rejections (everything except absorbable latency spikes and
        payload corruption)."""
        return (
            self.timeouts
            + self.batcher_crashes
            + self.queue_exhaustion_bursts
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> ChaosConfig:
        _check_no_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True, kw_only=True)
class PipelineConfig:
    """Everything :func:`repro.api.build_pipeline` needs to wire a
    hybrid around a trained model.

    Attributes
    ----------
    architecture:
        Key into :data:`repro.api.ARCHITECTURES` -- ``"parallel"``
        (Figure 1), ``"integrated"`` (Figure 2), or any registered
        extension.  :class:`Architecture` members are accepted and
        stored as their string value.
    safety_class:
        Class index the reliable-result block qualifies.
    qualifier:
        The dependable block's configuration.
    partition:
        Reliable/non-reliable split; only meaningful for architectures
        with an in-network dependable path.  ``None`` means the
        architecture's default (the paper's conv1 Sobel pair).
    pin_sobel:
        When True the factory pins Sobel-x/-y stacks into the first
        two reliable filters of the bifurcation layer (or ``conv1``),
        the paper's Section III.B pre-initialisation.
    name:
        Display name carried through to results and summaries.
    """

    architecture: str = Architecture.PARALLEL.value
    safety_class: int = DEFAULT_SAFETY_CLASS
    qualifier: QualifierConfig = field(default_factory=QualifierConfig)
    partition: PartitionConfig | None = None
    pin_sobel: bool = False
    name: str = "hybrid-pipeline"

    def __post_init__(self) -> None:
        if isinstance(self.architecture, Architecture):
            object.__setattr__(
                self, "architecture", self.architecture.value
            )
        if not self.architecture:
            raise ValueError("architecture must be non-empty")
        if self.safety_class < 0:
            raise ValueError("safety_class must be non-negative")
        if not isinstance(self.qualifier, QualifierConfig):
            raise TypeError("qualifier must be a QualifierConfig")
        if self.partition is not None and not isinstance(
            self.partition, PartitionConfig
        ):
            raise TypeError("partition must be a PartitionConfig or None")

    def to_dict(self) -> dict:
        return {
            "architecture": self.architecture,
            "safety_class": self.safety_class,
            "qualifier": self.qualifier.to_dict(),
            "partition": (
                None if self.partition is None else self.partition.to_dict()
            ),
            "pin_sobel": self.pin_sobel,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> PipelineConfig:
        _check_no_unknown_keys(cls, data)
        data = dict(data)
        if "qualifier" in data and isinstance(data["qualifier"], dict):
            data["qualifier"] = QualifierConfig.from_dict(data["qualifier"])
        if "partition" in data and isinstance(data["partition"], dict):
            data["partition"] = PartitionConfig.from_dict(data["partition"])
        return cls(**data)

    def content_hash(self) -> str:
        """Stable digest of the pipeline's wiring (the campaign-spec
        hashing scheme: canonical JSON of :meth:`to_dict`).

        Two pipelines with the same hash are wired identically, so --
        by the repo's end-to-end bitwise-determinism guarantee -- they
        produce word-identical results for word-identical inputs.
        That is the safety premise of the serving response cache,
        which keys entries by ``(image digest, content_hash)``; see
        :mod:`repro.serving.cache`.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

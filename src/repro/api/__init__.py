"""``repro.api`` -- the unified pipeline layer.

The canonical way to construct and run hybrid inference.  Everything
is importable flat from this package:

>>> from repro.api import (
...     Architecture, Redundancy,
...     PipelineConfig, QualifierConfig, PartitionConfig,
...     HybridPipeline, BatchResult, build_pipeline,
...     ARCHITECTURES, QUALIFIERS, OPERATORS, BASELINES,
... )

Three layers:

* **Configs** (:class:`PipelineConfig`, :class:`QualifierConfig`,
  :class:`PartitionConfig`) -- validated, JSON-round-trippable
  descriptions of a pipeline's wiring.
* **Registries** (:data:`ARCHITECTURES`, :data:`QUALIFIERS`,
  :data:`OPERATORS`, :data:`ENGINES`, :data:`BASELINES`) --
  string-keyed builder maps with a ``register()`` decorator, so new
  architectures, qualifiers, redundancy operators, reliable-execution
  engines and protection baselines plug in without touching
  ``repro.core``.
* **Facade** (:class:`HybridPipeline` via :func:`build_pipeline`) --
  ``infer`` / ``infer_batch`` / ``infer_stream`` over any registered
  architecture, returning :class:`~repro.core.hybrid.HybridResult`
  per image and :class:`BatchResult` aggregates per batch, with the
  batched path vectorised through
  :meth:`repro.nn.network.Sequential.forward`.
* **Serving** (:class:`PipelineServer` via ``HybridPipeline.serve``,
  configured by :class:`ServingConfig`) -- concurrent single-image
  submissions micro-batched onto ``infer_batch`` with backpressure
  and bitwise serial-``infer`` parity; see ``docs/serving.md``.

See ``docs/api-reference.md`` for the complete symbol reference.
"""

from repro.api.config import (
    DEFAULT_SAFETY_CLASS,
    Architecture,
    ChaosConfig,
    PartitionConfig,
    PipelineConfig,
    QualifierConfig,
    Redundancy,
    ServingConfig,
)
from repro.api.registry import (
    ARCHITECTURES,
    BASELINES,
    CAMPAIGN_TARGETS,
    ENGINES,
    OPERATORS,
    QUALIFIERS,
    Registry,
    RegistryError,
)
from repro.api.results import BatchResult
from repro.api.pipeline import (
    HybridPipeline,
    build_baseline,
    build_operator,
    build_pipeline,
    build_qualifier,
)
from repro.serving import (
    PendingResult,
    PipelineServer,
    ServerStats,
)

__all__ = [
    "Architecture",
    "Redundancy",
    "DEFAULT_SAFETY_CLASS",
    "PipelineConfig",
    "QualifierConfig",
    "PartitionConfig",
    "ServingConfig",
    "ChaosConfig",
    "Registry",
    "RegistryError",
    "ARCHITECTURES",
    "QUALIFIERS",
    "OPERATORS",
    "ENGINES",
    "BASELINES",
    "CAMPAIGN_TARGETS",
    "BatchResult",
    "HybridPipeline",
    "PipelineServer",
    "PendingResult",
    "ServerStats",
    "build_pipeline",
    "build_qualifier",
    "build_operator",
    "build_baseline",
]

"""Structured results of batched hybrid inference."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.core.hybrid import Decision, HybridResult


@dataclass
class BatchResult:
    """Per-image :class:`~repro.core.hybrid.HybridResult`\\ s plus the
    aggregates a serving system reports per batch.

    Attributes
    ----------
    results:
        One entry per input image, in input order.
    elapsed_seconds:
        Wall-clock time of the whole batch (CNN forward + qualifier).
    decision_counts:
        ``Decision.value -> count`` over the batch; every decision kind
        appears, zero-count included, so dashboards see a stable key
        set.
    """

    results: list[HybridResult]
    elapsed_seconds: float = 0.0
    decision_counts: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.decision_counts:
            counts = Counter(r.decision for r in self.results)
            self.decision_counts = {
                decision.value: counts.get(decision, 0)
                for decision in Decision
            }

    # -- container protocol ---------------------------------------------
    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[HybridResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> HybridResult:
        return self.results[index]

    # -- aggregates ------------------------------------------------------
    @property
    def n_images(self) -> int:
        return len(self.results)

    @property
    def throughput(self) -> float:
        """Images per second (0.0 when timing was not recorded)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.n_images / self.elapsed_seconds

    @property
    def probabilities(self) -> np.ndarray:
        """Stacked ``(n, classes)`` softmax confidences."""
        if not self.results:
            return np.empty((0, 0), dtype=np.float32)
        return np.stack([r.probabilities for r in self.results])

    @property
    def predicted_classes(self) -> np.ndarray:
        return np.array(
            [r.predicted_class for r in self.results], dtype=int
        )

    @property
    def decisions(self) -> list[Decision]:
        return [r.decision for r in self.results]

    @property
    def confirmed_count(self) -> int:
        """Dependable positives on the safety class."""
        return self.decision_counts.get(Decision.CONFIRMED.value, 0)

    def summary(self) -> str:
        """One-paragraph batch report."""
        lines = [
            f"{self.n_images} images in {self.elapsed_seconds:.3f}s "
            f"({self.throughput:.1f} img/s)"
        ]
        for value, count in self.decision_counts.items():
            if count:
                lines.append(f"  {value:<24} {count}")
        return "\n".join(lines)

"""Rasterisation primitives: polygons, disks and rings."""

from __future__ import annotations

import numpy as np


def regular_polygon(
    center: tuple[float, float],
    radius: float,
    sides: int,
    rotation: float = 0.0,
) -> np.ndarray:
    """Vertices of a regular polygon as ``(sides, 2)`` (row, col).

    ``rotation`` is in radians; zero puts the first vertex along the
    positive column axis.  A "flat-top" octagon (like a stop sign)
    uses ``rotation = pi / 8``.
    """
    if sides < 3:
        raise ValueError("a polygon needs at least 3 sides")
    if radius <= 0:
        raise ValueError("radius must be positive")
    cr, cc = center
    angles = rotation + 2.0 * np.pi * np.arange(sides) / sides
    rows = cr + radius * np.sin(angles)
    cols = cc + radius * np.cos(angles)
    return np.stack([rows, cols], axis=1)


def polygon_mask(
    shape: tuple[int, int], vertices: np.ndarray
) -> np.ndarray:
    """Filled-polygon boolean mask via vectorised ray casting.

    A pixel is inside when a ray cast along +col crosses the polygon
    boundary an odd number of times (even-odd rule).
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    if vertices.ndim != 2 or vertices.shape[1] != 2 or len(vertices) < 3:
        raise ValueError("vertices must be (n>=3, 2)")
    h, w = shape
    rows, cols = np.mgrid[0:h, 0:w]
    inside = np.zeros((h, w), dtype=bool)
    r1 = vertices[:, 0]
    c1 = vertices[:, 1]
    r2 = np.roll(r1, -1)
    c2 = np.roll(c1, -1)
    for er1, ec1, er2, ec2 in zip(r1, c1, r2, c2):
        if er1 == er2:  # horizontal edge never crossed by +col ray rule
            continue
        crosses = (er1 > rows) != (er2 > rows)
        # Column where the edge intersects this pixel row.
        with np.errstate(divide="ignore", invalid="ignore"):
            col_at = ec1 + (rows - er1) * (ec2 - ec1) / (er2 - er1)
        inside ^= crosses & (cols < col_at)
    return inside


def disk_mask(
    shape: tuple[int, int], center: tuple[float, float], radius: float
) -> np.ndarray:
    """Filled-circle boolean mask."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    h, w = shape
    rows, cols = np.mgrid[0:h, 0:w]
    cr, cc = center
    return (rows - cr) ** 2 + (cols - cc) ** 2 <= radius**2


def ring_mask(
    shape: tuple[int, int],
    center: tuple[float, float],
    outer_radius: float,
    inner_radius: float,
) -> np.ndarray:
    """Annulus mask (e.g. the red ring of a speed-limit sign)."""
    if inner_radius >= outer_radius:
        raise ValueError("inner_radius must be smaller than outer_radius")
    outer = disk_mask(shape, center, outer_radius)
    inner = disk_mask(shape, center, inner_radius)
    return outer & ~inner

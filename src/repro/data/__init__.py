"""Synthetic traffic-sign data standing in for GTSRB.

The paper's experiments use the German Traffic Sign Recognition
Benchmark (GTSRB).  That dataset cannot be redistributed here, so this
package generates parametric sign images with the properties the
experiments rely on:

* a "Stop" class whose octagonal outline is recoverable by the
  deterministic edge/contour pipeline (Figure 3);
* several visually distinct non-stop classes (circles, triangles,
  diamonds) so a CNN has a multi-class task resembling GTSRB's
  (Figure 4, confusion-matrix experiment);
* controlled nuisance factors -- rotation, scale, illumination,
  additive noise, background clutter -- so difficulty is tunable and
  every image is reproducible from a seed.
"""

from repro.data.shapes2d import (
    polygon_mask,
    disk_mask,
    regular_polygon,
    ring_mask,
)
from repro.data.signs import (
    SIGN_CLASSES,
    STOP_CLASS_INDEX,
    SignSpec,
    class_names,
    render_sign,
)
from repro.data.dataset import SignDataset, make_dataset, train_test_split
from repro.data.augment import add_noise, adjust_brightness, rotate_image

__all__ = [
    "polygon_mask",
    "disk_mask",
    "ring_mask",
    "regular_polygon",
    "SIGN_CLASSES",
    "STOP_CLASS_INDEX",
    "SignSpec",
    "class_names",
    "render_sign",
    "SignDataset",
    "make_dataset",
    "train_test_split",
    "add_noise",
    "adjust_brightness",
    "rotate_image",
]

"""Image augmentation: noise, brightness, rotation."""

from __future__ import annotations

import numpy as np


def add_noise(
    image: np.ndarray, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Additive Gaussian pixel noise, clipped to [0, 1]."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0:
        return image.copy()
    noisy = image + rng.normal(0.0, sigma, size=image.shape)
    return np.clip(noisy, 0.0, 1.0).astype(np.float32)


def adjust_brightness(image: np.ndarray, factor: float) -> np.ndarray:
    """Multiply pixel intensities by ``factor``, clipped to [0, 1]."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    return np.clip(image * factor, 0.0, 1.0).astype(np.float32)


def rotate_image(image: np.ndarray, angle: float) -> np.ndarray:
    """Rotate a ``(c, h, w)`` image by ``angle`` radians about centre.

    Nearest-neighbour inverse mapping; pixels sampled from outside the
    source keep the border value of their nearest edge pixel.  For
    sign images prefer the ``rotation`` parameter of
    :func:`repro.data.signs.render_sign`, which rotates the vector
    shape before rasterising; this function exists for augmenting
    arbitrary raster inputs.
    """
    image = np.asarray(image, dtype=np.float32)
    if image.ndim != 3:
        raise ValueError(f"expected (c, h, w), got {image.shape}")
    c, h, w = image.shape
    cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
    rows, cols = np.mgrid[0:h, 0:w].astype(np.float64)
    dy = rows - cy
    dx = cols - cx
    cos_a, sin_a = np.cos(-angle), np.sin(-angle)
    src_r = cy + cos_a * dy - sin_a * dx
    src_c = cx + sin_a * dy + cos_a * dx
    src_r = np.clip(np.rint(src_r), 0, h - 1).astype(np.int64)
    src_c = np.clip(np.rint(src_c), 0, w - 1).astype(np.int64)
    return image[:, src_r, src_c]

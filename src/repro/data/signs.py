"""Parametric traffic-sign rendering.

Eight sign classes mirroring GTSRB's shape/colour families.  Each
class is defined by a :class:`SignSpec` (board shape, colours, simple
pictogram); :func:`render_sign` rasterises a spec into a ``(3, h, w)``
float image in ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.shapes2d import (
    disk_mask,
    polygon_mask,
    regular_polygon,
    ring_mask,
)

# RGB colours (approximate RAL traffic colours).
RED = (0.75, 0.06, 0.11)
WHITE = (0.95, 0.95, 0.95)
BLUE = (0.06, 0.30, 0.65)
YELLOW = (0.95, 0.80, 0.10)
BLACK = (0.05, 0.05, 0.05)
GREY = (0.55, 0.55, 0.55)


@dataclass(frozen=True)
class SignSpec:
    """Declarative description of a sign class.

    Attributes
    ----------
    name:
        GTSRB-style class name.
    board:
        ``"octagon"``, ``"circle"``, ``"triangle"``,
        ``"inverted_triangle"`` or ``"diamond"``.
    face, border:
        RGB of the sign face and (optional) border ring/edge.
    pictogram:
        ``"bar"``, ``"dot"``, ``"cross"``, ``"chevron"`` or ``None`` --
        a crude but class-consistent central glyph.
    pictogram_color:
        RGB of the glyph.
    """

    name: str
    board: str
    face: tuple[float, float, float]
    border: tuple[float, float, float] | None = None
    pictogram: str | None = None
    pictogram_color: tuple[float, float, float] = BLACK


SIGN_CLASSES: list[SignSpec] = [
    SignSpec("stop", "octagon", RED, border=WHITE),
    SignSpec("speed_limit_50", "circle", WHITE, border=RED,
             pictogram="bar"),
    SignSpec("speed_limit_80", "circle", WHITE, border=RED,
             pictogram="dot"),
    SignSpec("no_entry", "circle", RED, pictogram="bar",
             pictogram_color=WHITE),
    SignSpec("yield", "inverted_triangle", WHITE, border=RED),
    SignSpec("priority_road", "diamond", YELLOW, border=WHITE),
    SignSpec("caution", "triangle", WHITE, border=RED,
             pictogram="cross"),
    SignSpec("mandatory_right", "circle", BLUE, pictogram="chevron",
             pictogram_color=WHITE),
]

STOP_CLASS_INDEX = 0


def class_names() -> list[str]:
    """Names of all sign classes, index-aligned with labels."""
    return [spec.name for spec in SIGN_CLASSES]


def _board_mask(
    board: str,
    size: int,
    center: tuple[float, float],
    radius: float,
    rotation: float,
) -> np.ndarray:
    shape = (size, size)
    if board == "octagon":
        # Flat-top octagon like a real stop sign.
        verts = regular_polygon(center, radius, 8, rotation + np.pi / 8)
        return polygon_mask(shape, verts)
    if board == "circle":
        return disk_mask(shape, center, radius)
    if board == "triangle":
        verts = regular_polygon(center, radius, 3, rotation - np.pi / 2)
        return polygon_mask(shape, verts)
    if board == "inverted_triangle":
        verts = regular_polygon(center, radius, 3, rotation + np.pi / 2)
        return polygon_mask(shape, verts)
    if board == "diamond":
        verts = regular_polygon(center, radius, 4, rotation + np.pi / 2)
        return polygon_mask(shape, verts)
    raise ValueError(f"unknown board shape {board!r}")


def _pictogram_mask(
    kind: str, size: int, center: tuple[float, float], radius: float
) -> np.ndarray:
    shape = (size, size)
    cr, cc = center
    if kind == "bar":
        half_h = max(1.0, radius * 0.18)
        half_w = radius * 0.62
        rows, cols = np.mgrid[0:size, 0:size]
        return (np.abs(rows - cr) <= half_h) & (np.abs(cols - cc) <= half_w)
    if kind == "dot":
        return disk_mask(shape, center, max(1.5, radius * 0.28))
    if kind == "cross":
        rows, cols = np.mgrid[0:size, 0:size]
        arm = max(1.0, radius * 0.14)
        extent = radius * 0.55
        horiz = (np.abs(rows - cr) <= arm) & (np.abs(cols - cc) <= extent)
        vert = (np.abs(cols - cc) <= arm) & (np.abs(rows - cr) <= extent)
        return horiz | vert
    if kind == "chevron":
        verts = regular_polygon(center, radius * 0.45, 3, 0.0)
        return polygon_mask(shape, verts)
    raise ValueError(f"unknown pictogram {kind!r}")


def render_sign(
    spec: SignSpec | int,
    size: int = 64,
    rotation: float = 0.0,
    scale: float = 0.8,
    center_jitter: tuple[float, float] = (0.0, 0.0),
    background: tuple[float, float, float] = GREY,
) -> np.ndarray:
    """Rasterise a sign to a ``(3, size, size)`` float image in [0, 1].

    Parameters
    ----------
    spec:
        A :class:`SignSpec` or a class index into :data:`SIGN_CLASSES`.
    rotation:
        In-plane rotation in radians (the paper's Figure 3 uses a
        "slightly angled" stop sign).
    scale:
        Sign radius as a fraction of ``size / 2``.
    center_jitter:
        (row, col) offset of the sign centre from the image centre.
    """
    if isinstance(spec, int):
        spec = SIGN_CLASSES[spec]
    if not 0.1 <= scale <= 1.0:
        raise ValueError("scale must be in [0.1, 1.0]")
    center = (
        size / 2.0 + center_jitter[0],
        size / 2.0 + center_jitter[1],
    )
    radius = scale * size / 2.0
    image = np.empty((3, size, size), dtype=np.float32)
    for ch in range(3):
        image[ch] = background[ch]

    board = _board_mask(spec.board, size, center, radius, rotation)
    _paint(image, board, spec.face)
    if spec.border is not None:
        border_band = board & ~_board_mask(
            spec.board, size, center, radius * 0.82, rotation
        )
        _paint(image, border_band, spec.border)
    if spec.pictogram is not None:
        glyph = _pictogram_mask(spec.pictogram, size, center, radius)
        _paint(image, glyph & board, spec.pictogram_color)
    return image


def _paint(
    image: np.ndarray, mask: np.ndarray, color: tuple[float, float, float]
) -> None:
    for ch in range(3):
        image[ch][mask] = color[ch]

"""Dataset assembly: batches of randomised synthetic signs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.augment import add_noise, adjust_brightness
from repro.data.signs import SIGN_CLASSES, render_sign


@dataclass
class SignDataset:
    """Images, integer labels and the generation parameters."""

    images: np.ndarray  # (n, 3, size, size) float32 in [0, 1]
    labels: np.ndarray  # (n,) int64
    size: int
    seed: int

    def __len__(self) -> int:
        return len(self.images)

    def class_subset(self, label: int) -> np.ndarray:
        """All images of one class."""
        return self.images[self.labels == label]


def make_dataset(
    n_per_class: int,
    size: int = 32,
    seed: int = 0,
    noise_sigma: float = 0.03,
    max_rotation: float = 0.2,
    max_jitter: float = 0.06,
    brightness_range: tuple[float, float] = (0.8, 1.2),
) -> SignDataset:
    """Generate a balanced synthetic sign dataset.

    Nuisance parameters are drawn uniformly per image: rotation in
    ``[-max_rotation, max_rotation]`` radians, centre jitter up to
    ``max_jitter * size`` pixels, brightness in ``brightness_range``
    and additive Gaussian noise of ``noise_sigma``.
    """
    if n_per_class <= 0:
        raise ValueError("n_per_class must be positive")
    rng = np.random.default_rng(seed)
    images = []
    labels = []
    for class_index in range(len(SIGN_CLASSES)):
        for _ in range(n_per_class):
            rotation = rng.uniform(-max_rotation, max_rotation)
            jitter_px = max_jitter * size
            jitter = (
                rng.uniform(-jitter_px, jitter_px),
                rng.uniform(-jitter_px, jitter_px),
            )
            scale = rng.uniform(0.68, 0.88)
            image = render_sign(
                class_index,
                size=size,
                rotation=rotation,
                scale=scale,
                center_jitter=jitter,
            )
            image = adjust_brightness(
                image, rng.uniform(*brightness_range)
            )
            image = add_noise(image, noise_sigma, rng)
            images.append(image)
            labels.append(class_index)
    x = np.stack(images).astype(np.float32)
    y = np.array(labels, dtype=np.int64)
    order = rng.permutation(len(x))
    return SignDataset(images=x[order], labels=y[order], size=size, seed=seed)


def train_test_split(
    dataset: SignDataset, test_fraction: float = 0.25, seed: int = 0
) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Shuffled split into ``((x_train, y_train), (x_test, y_test))``."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = len(dataset)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return (
        (dataset.images[train_idx], dataset.labels[train_idx]),
        (dataset.images[test_idx], dataset.labels[test_idx]),
    )
